//! Open-loop workload generation and QoS measurement.
//!
//! The closed-loop driver ([`Dataset::drive_closed_loop`]) can only
//! measure operating points where offered load equals service rate —
//! each client waits for its previous operation before submitting the
//! next, so the system is never pushed past saturation. This module
//! supplies the other half of the classic storage-QoS picture: a
//! **deterministic, seedable open-loop driver** that injects requests
//! at generated *arrival instants* on the virtual timeline regardless
//! of completions, which is what makes latency–throughput curves to
//! saturation (and past it) measurable.
//!
//! Three composable pieces:
//!
//! - **Arrival processes** — [`ArrivalProcess`] generators emitting
//!   interarrival gaps in virtual seconds: [`FixedArrivals`] (constant
//!   rate), [`PoissonArrivals`] (exponential gaps), and
//!   [`BurstyArrivals`] (MMPP-style on/off: Poisson bursts separated
//!   by silences). The [`Arrivals`] enum is the plain-config form the
//!   drive spec carries.
//! - **Access patterns** — [`AccessPattern`] generators producing read
//!   ranges: [`UniformPattern`], [`ZipfPattern`] (Zipf(θ) over
//!   span-sized slots), [`SequentialPattern`] (wrapping scan cursor),
//!   and [`HotspotPattern`] (hot/cold two-tier mix). The [`Pattern`]
//!   enum is the config form. An [`OpMix`] turns ranges into a typed
//!   [`StoreOp`] stream (get/scan/append fractions) via [`OpStream`].
//! - **The open-loop driver** — [`Dataset::drive_open_loop`] walks the
//!   arrival timeline, sheds arrivals that find the virtual queue at
//!   capacity (open-loop overload drops load instead of slowing the
//!   arrival process — the deterministic analogue of
//!   [`SubmitMode::Fail`](super::SubmitMode::Fail) load shedding), and
//!   aggregates per-operation [`OpReport`](super::OpReport)s into a
//!   [`QosReport`]: achieved vs offered throughput, shed counts, a
//!   shared [`LatencyStats`] percentile block, per-device utilization,
//!   and per-op-kind cache outcomes.
//!
//! Everything is driven by one [`WorkloadRng`] (SplitMix64) seeded
//! from the spec, so a fixed `(seed, spec)` pair replays bit-identical
//! arrival instants and operation streams. On an identically-prepared
//! dataset (same encode, cold cache) the whole [`QosReport`] is
//! reproduced exactly — the property the QoS benches assert on.

use super::stats::{LatencyByKind, LatencyStats};
use super::Dataset;
use crate::engine::{EngineBackend, OpTrace, OpValue, StoreOp};
use crate::obs::{LogHistogram, OpSpan};
use crate::{ConfigError, Result};
use sage_genomics::ReadSet;
use sage_io::{IoConfig, Reactor, SchedPolicyKind};
use std::ops::Range;
use std::sync::Arc;

/// Decorrelates the arrival-instant stream from the op stream: both
/// derive from the one spec seed without sharing draws.
pub(crate) const ARRIVAL_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;
pub(crate) const OP_STREAM: u64 = 0xbf58_476d_1ce4_e5b9;
/// Dedicated stream for attributing *shed* arrivals an op kind: shed
/// arrivals must not consume draws from the admitted op stream (that
/// would change every admitted op after the first shed and break
/// bit-compatibility with earlier releases), so their kinds come from
/// this separate, identically-weighted stream.
pub(crate) const SHED_STREAM: u64 = 0x94d0_49bb_1331_11eb;

/// The workload generators' deterministic random source (SplitMix64).
///
/// Small, seedable, and stable across platforms — every arrival
/// process and access pattern draws from one of these, which is what
/// makes a drive replayable from its spec alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> WorkloadRng {
        WorkloadRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)` (0 when `n` is 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Exponential draw with mean `1/rate` (an interarrival gap of a
    /// Poisson process at `rate` events per second).
    pub fn exp(&mut self, rate: f64) -> f64 {
        -(1.0 - self.next_f64()).ln() / rate
    }
}

// ---------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------

/// A generator of open-loop arrival instants: each call yields the
/// virtual-seconds gap to the next arrival. Implementations carry
/// their own phase state; randomness always comes from the caller's
/// [`WorkloadRng`] so streams replay from the seed.
pub trait ArrivalProcess: Send {
    /// Virtual seconds until the next arrival (must be ≥ 0 and finite).
    fn next_interarrival(&mut self, rng: &mut WorkloadRng) -> f64;
}

/// Constant-rate arrivals: every gap is exactly `1/rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedArrivals {
    /// Arrivals per virtual second.
    pub rate: f64,
}

impl ArrivalProcess for FixedArrivals {
    fn next_interarrival(&mut self, _rng: &mut WorkloadRng) -> f64 {
        1.0 / self.rate
    }
}

/// Poisson arrivals: exponential gaps with mean `1/rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    /// Mean arrivals per virtual second.
    pub rate: f64,
}

impl ArrivalProcess for PoissonArrivals {
    fn next_interarrival(&mut self, rng: &mut WorkloadRng) -> f64 {
        rng.exp(self.rate)
    }
}

/// Bursty (on/off, MMPP-style) arrivals: exponentially-distributed ON
/// phases (mean `mean_on` seconds) during which arrivals are Poisson
/// at `on_rate`, separated by exponentially-distributed silent OFF
/// phases (mean `mean_off` seconds). The long-run mean rate is
/// `on_rate · mean_on / (mean_on + mean_off)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyArrivals {
    /// Arrivals per virtual second while a burst is on.
    pub on_rate: f64,
    /// Mean ON-phase duration, virtual seconds.
    pub mean_on: f64,
    /// Mean OFF-phase duration, virtual seconds.
    pub mean_off: f64,
    /// Virtual seconds left in the current phase.
    phase_left: f64,
    /// `true` while in an ON phase.
    on: bool,
}

impl BurstyArrivals {
    /// A bursty process starting at the beginning of an ON phase.
    pub fn new(on_rate: f64, mean_on: f64, mean_off: f64) -> BurstyArrivals {
        BurstyArrivals {
            on_rate,
            mean_on,
            mean_off,
            phase_left: 0.0,
            on: false,
        }
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_interarrival(&mut self, rng: &mut WorkloadRng) -> f64 {
        let mut gap = 0.0;
        loop {
            if self.on {
                let dt = rng.exp(self.on_rate);
                if dt <= self.phase_left {
                    self.phase_left -= dt;
                    return gap + dt;
                }
                // The burst ends before the next arrival: spend the
                // rest of the ON phase, then go silent.
                gap += self.phase_left;
                self.on = false;
                self.phase_left = rng.exp(1.0 / self.mean_off);
            } else {
                gap += self.phase_left;
                self.on = true;
                self.phase_left = rng.exp(1.0 / self.mean_on);
            }
        }
    }
}

/// Arrival-process configuration — the plain-data form an
/// [`OpenLoopSpec`] carries. [`Arrivals::process`] instantiates the
/// matching stateful [`ArrivalProcess`] generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Constant-rate arrivals at `rate` per virtual second.
    Fixed {
        /// Arrivals per virtual second.
        rate: f64,
    },
    /// Poisson arrivals at mean `rate` per virtual second.
    Poisson {
        /// Mean arrivals per virtual second.
        rate: f64,
    },
    /// On/off bursts: Poisson at `on_rate` during ON phases of mean
    /// `mean_on` seconds, silent for mean `mean_off` seconds between.
    Bursty {
        /// Arrivals per virtual second while a burst is on.
        on_rate: f64,
        /// Mean ON-phase duration, virtual seconds.
        mean_on: f64,
        /// Mean OFF-phase duration, virtual seconds.
        mean_off: f64,
    },
}

impl Arrivals {
    /// Instantiates the stateful generator for this configuration.
    pub fn process(&self) -> Box<dyn ArrivalProcess> {
        match *self {
            Arrivals::Fixed { rate } => Box::new(FixedArrivals { rate }),
            Arrivals::Poisson { rate } => Box::new(PoissonArrivals { rate }),
            Arrivals::Bursty {
                on_rate,
                mean_on,
                mean_off,
            } => Box::new(BurstyArrivals::new(on_rate, mean_on, mean_off)),
        }
    }

    /// Long-run mean arrival rate (per virtual second).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            Arrivals::Fixed { rate } | Arrivals::Poisson { rate } => rate,
            Arrivals::Bursty {
                on_rate,
                mean_on,
                mean_off,
            } => on_rate * mean_on / (mean_on + mean_off),
        }
    }

    /// Display label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            Arrivals::Fixed { .. } => "fixed",
            Arrivals::Poisson { .. } => "poisson",
            Arrivals::Bursty { .. } => "bursty",
        }
    }

    /// Checks the configured rates and durations.
    ///
    /// # Errors
    ///
    /// [`ConfigError::NonPositiveRate`] when any rate or phase
    /// duration is not a positive finite number.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        let ok = |v: f64| v.is_finite() && v > 0.0;
        let valid = match *self {
            Arrivals::Fixed { rate } | Arrivals::Poisson { rate } => ok(rate),
            Arrivals::Bursty {
                on_rate,
                mean_on,
                mean_off,
            } => ok(on_rate) && ok(mean_on) && ok(mean_off),
        };
        if valid {
            Ok(())
        } else {
            Err(ConfigError::NonPositiveRate)
        }
    }
}

// ---------------------------------------------------------------------
// Access patterns
// ---------------------------------------------------------------------

/// A generator of read ranges over a dataset of fixed size (captured
/// at instantiation). Randomness comes from the caller's
/// [`WorkloadRng`]; implementations may carry cursor or table state.
pub trait AccessPattern: Send {
    /// The next read range (always within the captured dataset bounds,
    /// never empty for a non-empty dataset).
    fn next_range(&mut self, rng: &mut WorkloadRng) -> Range<u64>;
}

/// Clamps a drawn start to a valid `[start, start+span)` range.
fn clamp_range(start: u64, span: u64, total: u64) -> Range<u64> {
    if total == 0 {
        return 0..0;
    }
    let start = start.min(total - 1);
    start..(start + span.max(1)).min(total)
}

/// Uniformly random range starts across the whole dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPattern {
    total: u64,
    span: u64,
}

impl UniformPattern {
    /// Uniform `span`-read ranges over `total` reads.
    pub fn new(total: u64, span: u64) -> UniformPattern {
        UniformPattern { total, span }
    }
}

impl AccessPattern for UniformPattern {
    fn next_range(&mut self, rng: &mut WorkloadRng) -> Range<u64> {
        clamp_range(rng.below(self.total.max(1)), self.span, self.total)
    }
}

/// Zipf(θ)-distributed range starts over span-sized slots: slot `i`
/// (0-based) is drawn with probability ∝ `1/(i+1)^θ`, so a small set
/// of hot slots absorbs most of the traffic — the classic skewed
/// serving workload the cache ablation runs on.
///
/// The cumulative weight table is built once at instantiation
/// (`total/span` slots) and sampled by inverse-CDF binary search.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfPattern {
    total: u64,
    span: u64,
    /// Cumulative normalized slot weights, ascending to 1.0.
    cdf: Vec<f64>,
}

impl ZipfPattern {
    /// Zipf(`theta`) over `span`-read slots of a `total`-read dataset.
    pub fn new(total: u64, span: u64, theta: f64) -> ZipfPattern {
        let slots = (total.max(1)).div_ceil(span.max(1)).max(1) as usize;
        let mut cdf = Vec::with_capacity(slots);
        let mut sum = 0.0;
        for i in 0..slots {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(sum);
        }
        for w in &mut cdf {
            *w /= sum;
        }
        ZipfPattern { total, span, cdf }
    }

    /// Slot count of the built table.
    pub fn slots(&self) -> usize {
        self.cdf.len()
    }
}

impl AccessPattern for ZipfPattern {
    fn next_range(&mut self, rng: &mut WorkloadRng) -> Range<u64> {
        let u = rng.next_f64();
        let slot = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        clamp_range(slot as u64 * self.span, self.span, self.total)
    }
}

/// A wrapping sequential cursor: each range starts where the previous
/// one ended — the streaming-scan half of scan-resistance studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialPattern {
    total: u64,
    span: u64,
    cursor: u64,
}

impl SequentialPattern {
    /// Sequential `span`-read windows over `total` reads, from 0.
    pub fn new(total: u64, span: u64) -> SequentialPattern {
        SequentialPattern {
            total,
            span,
            cursor: 0,
        }
    }
}

impl AccessPattern for SequentialPattern {
    fn next_range(&mut self, _rng: &mut WorkloadRng) -> Range<u64> {
        let r = clamp_range(self.cursor, self.span, self.total);
        self.cursor = if r.end >= self.total { 0 } else { r.end };
        r
    }
}

/// A two-tier hot/cold mix: with probability `hot_weight` the start is
/// drawn uniformly from the first `hot_fraction` of the keyspace,
/// otherwise uniformly from the cold remainder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotPattern {
    total: u64,
    span: u64,
    hot_fraction: f64,
    hot_weight: f64,
}

impl HotspotPattern {
    /// `hot_weight` of the traffic lands on the first `hot_fraction`
    /// of `total` reads.
    pub fn new(total: u64, span: u64, hot_fraction: f64, hot_weight: f64) -> HotspotPattern {
        HotspotPattern {
            total,
            span,
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
            hot_weight: hot_weight.clamp(0.0, 1.0),
        }
    }
}

impl AccessPattern for HotspotPattern {
    fn next_range(&mut self, rng: &mut WorkloadRng) -> Range<u64> {
        let hot_len = ((self.total as f64 * self.hot_fraction) as u64).clamp(1, self.total.max(1));
        let start = if rng.next_f64() < self.hot_weight {
            rng.below(hot_len)
        } else if hot_len >= self.total {
            rng.below(self.total.max(1))
        } else {
            hot_len + rng.below(self.total - hot_len)
        };
        clamp_range(start, self.span, self.total)
    }
}

/// Access-pattern configuration — the plain-data form an
/// [`OpenLoopSpec`] carries. [`Pattern::instantiate`] builds the
/// matching stateful [`AccessPattern`] generator for a dataset size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniformly random `span`-read ranges.
    Uniform {
        /// Reads per range.
        span: u64,
    },
    /// Zipf(`theta`)-skewed range starts over `span`-read slots.
    Zipf {
        /// Skew exponent (θ ≈ 1 is the classic heavy skew).
        theta: f64,
        /// Reads per range.
        span: u64,
    },
    /// A wrapping sequential scan in `span`-read windows.
    Sequential {
        /// Reads per range.
        span: u64,
    },
    /// `hot_weight` of traffic on the first `hot_fraction` of reads.
    Hotspot {
        /// Fraction of the keyspace that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Fraction of traffic landing on the hot set, in `[0, 1]`.
        hot_weight: f64,
        /// Reads per range.
        span: u64,
    },
}

impl Pattern {
    /// Instantiates the stateful generator over a `total`-read dataset.
    pub fn instantiate(&self, total: u64) -> Box<dyn AccessPattern> {
        match *self {
            Pattern::Uniform { span } => Box::new(UniformPattern::new(total, span)),
            Pattern::Zipf { theta, span } => Box::new(ZipfPattern::new(total, span, theta)),
            Pattern::Sequential { span } => Box::new(SequentialPattern::new(total, span)),
            Pattern::Hotspot {
                hot_fraction,
                hot_weight,
                span,
            } => Box::new(HotspotPattern::new(total, span, hot_fraction, hot_weight)),
        }
    }

    /// Display label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Uniform { .. } => "uniform",
            Pattern::Zipf { .. } => "zipf",
            Pattern::Sequential { .. } => "sequential",
            Pattern::Hotspot { .. } => "hotspot",
        }
    }

    /// Checks the configured span and shape parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroSpan`] when ranges are sized to zero reads;
    /// [`ConfigError::NonPositiveRate`] when a shape parameter is out
    /// of range: θ not positive finite, `hot_fraction` outside
    /// `(0, 1]`, or `hot_weight` outside `[0, 1]`.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        let span = match *self {
            Pattern::Uniform { span } | Pattern::Sequential { span } => span,
            Pattern::Zipf { theta, span } => {
                if !(theta.is_finite() && theta > 0.0) {
                    return Err(ConfigError::NonPositiveRate);
                }
                span
            }
            Pattern::Hotspot {
                hot_fraction,
                hot_weight,
                span,
            } => {
                if !(hot_fraction.is_finite() && hot_fraction > 0.0 && hot_fraction <= 1.0) {
                    return Err(ConfigError::NonPositiveRate);
                }
                if !(hot_weight.is_finite() && (0.0..=1.0).contains(&hot_weight)) {
                    return Err(ConfigError::NonPositiveRate);
                }
                span
            }
        };
        if span == 0 {
            return Err(ConfigError::ZeroSpan);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Op mix
// ---------------------------------------------------------------------

/// Which operation kind a generated request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A ranged read ([`StoreOp::Get`]).
    Get,
    /// A full chunk-walk ([`StoreOp::Scan`]).
    Scan,
    /// An append of template reads ([`StoreOp::Append`]).
    Append,
}

impl OpKind {
    /// Display label (the span kind in trace exports).
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Scan => "scan",
            OpKind::Append => "append",
        }
    }
}

/// Relative operation-kind weights of a generated stream (they need
/// not sum to 1; only the ratios matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Weight of ranged `Get`s.
    pub get: f64,
    /// Weight of full-walk `Scan`s.
    pub scan: f64,
    /// Weight of `Append`s.
    pub append: f64,
}

impl Default for OpMix {
    fn default() -> OpMix {
        OpMix::gets()
    }
}

impl OpMix {
    /// A pure ranged-read stream (the default).
    pub fn gets() -> OpMix {
        OpMix {
            get: 1.0,
            scan: 0.0,
            append: 0.0,
        }
    }

    /// Checks the weights.
    ///
    /// # Errors
    ///
    /// [`ConfigError::DegenerateOpMix`] when any weight is negative or
    /// non-finite, or all are zero.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if ok(self.get)
            && ok(self.scan)
            && ok(self.append)
            && self.get + self.scan + self.append > 0.0
        {
            Ok(())
        } else {
            Err(ConfigError::DegenerateOpMix)
        }
    }

    /// Draws one op kind by weight.
    pub(crate) fn pick(&self, rng: &mut WorkloadRng) -> OpKind {
        let total = self.get + self.scan + self.append;
        let u = rng.next_f64() * total;
        if u < self.get {
            OpKind::Get
        } else if u < self.get + self.scan {
            OpKind::Scan
        } else {
            OpKind::Append
        }
    }
}

/// A deterministic stream of typed [`StoreOp`]s: an access pattern
/// supplying ranges, an [`OpMix`] choosing kinds, one seeded
/// [`WorkloadRng`] driving both. Scans walk every chunk with an
/// all-rejecting predicate (serving cost without result assembly);
/// appends clone the template reads.
pub struct OpStream {
    rng: WorkloadRng,
    pattern: Box<dyn AccessPattern>,
    mix: OpMix,
    append_template: ReadSet,
}

impl std::fmt::Debug for OpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpStream(mix: {:?})", self.mix)
    }
}

impl OpStream {
    /// A stream over a `total`-read dataset. `append_template` is the
    /// read set cloned into every generated `Append` (pass an empty
    /// set when the mix has no appends).
    pub fn new(
        pattern: &Pattern,
        mix: OpMix,
        seed: u64,
        total: u64,
        append_template: ReadSet,
    ) -> OpStream {
        OpStream {
            rng: WorkloadRng::new(seed),
            pattern: pattern.instantiate(total),
            mix,
            append_template,
        }
    }

    /// The next operation and its kind.
    pub fn next_op(&mut self) -> (StoreOp, OpKind) {
        match self.mix.pick(&mut self.rng) {
            OpKind::Get => (
                StoreOp::Get(self.pattern.next_range(&mut self.rng)),
                OpKind::Get,
            ),
            OpKind::Scan => (StoreOp::Scan(Box::new(|_| false)), OpKind::Scan),
            OpKind::Append => (
                StoreOp::Append(self.append_template.clone()),
                OpKind::Append,
            ),
        }
    }
}

// ---------------------------------------------------------------------
// The open-loop driver
// ---------------------------------------------------------------------

/// Sizing of one open-loop drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// The arrival process injecting requests on the virtual timeline.
    pub arrivals: Arrivals,
    /// The access pattern generating read ranges.
    pub pattern: Pattern,
    /// Operation-kind weights.
    pub mix: OpMix,
    /// Arrivals to generate (sheds included).
    pub requests: u64,
    /// Virtual queue bound: an arrival that finds this many admitted
    /// operations still incomplete *at its arrival instant* is shed —
    /// the open-loop analogue of
    /// [`SubmitMode::Fail`](super::SubmitMode::Fail).
    pub queue_depth: usize,
    /// Reactor worker threads. Execution is serialized by the driver
    /// for bit-determinism, so this only overlaps real decode work.
    pub workers: usize,
    /// Seed deriving the arrival and op streams.
    pub seed: u64,
}

impl OpenLoopSpec {
    /// A spec with the default shape: `arrivals` over uniform 16-read
    /// gets, 256 requests, a 64-deep virtual queue, one worker, seed
    /// `0x5a6e`.
    pub fn new(arrivals: Arrivals) -> OpenLoopSpec {
        OpenLoopSpec {
            arrivals,
            pattern: Pattern::Uniform { span: 16 },
            mix: OpMix::gets(),
            requests: 256,
            queue_depth: 64,
            workers: 1,
            seed: 0x5a6e,
        }
    }

    /// Checks every knob.
    ///
    /// # Errors
    ///
    /// The first failing knob's [`ConfigError`].
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        self.arrivals.validate()?;
        self.pattern.validate()?;
        self.mix.validate()?;
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroServerWorkers);
        }
        Ok(())
    }
}

/// Per-op-kind serving outcome aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpKindStats {
    /// Operations of this kind completed.
    pub ops: u64,
    /// Chunk touches served from the decoded-chunk cache.
    pub chunk_hits: u64,
    /// Chunk touches that had to fetch and decode.
    pub chunk_misses: u64,
}

impl OpKindStats {
    /// Chunk-touch hit fraction in `[0, 1]` (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.chunk_hits + self.chunk_misses;
        if total == 0 {
            return 0.0;
        }
        self.chunk_hits as f64 / total as f64
    }

    pub(crate) fn record(&mut self, trace: &OpTrace) {
        self.ops += 1;
        self.chunk_hits += trace.cache_hits;
        self.chunk_misses += trace.cache_misses;
    }
}

/// One shed arrival, attributable per op mix: the kind the arrival
/// would have submitted and the virtual instant it arrived.
///
/// The kind is drawn from a dedicated rng stream (`SHED_STREAM`) with
/// the spec's own [`OpMix`] weights, so attribution is statistically
/// faithful to the mix while the *admitted* op stream consumes
/// exactly the draws it always did — shed accounting never changes
/// which operations run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedEvent {
    /// Op kind the shed arrival would have submitted.
    pub kind: OpKind,
    /// Virtual arrival instant at which it was shed.
    pub arrival_vt: f64,
    /// Tenant whose arrival was turned away (0 is the default tenant;
    /// single-tenant drives only ever shed tenant 0).
    pub tenant: usize,
}

/// What an open-loop drive measured (virtual-time metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Arrivals generated (completed + shed).
    pub offered: u64,
    /// Operations admitted and completed.
    pub completed: u64,
    /// Arrivals shed because the virtual queue was at capacity.
    pub shed: u64,
    /// One [`ShedEvent`] per shed arrival, in arrival order (always
    /// `shed` entries): the kind the arrival would have carried and
    /// the instant it was turned away.
    pub shed_events: Vec<ShedEvent>,
    /// Measured offered rate: arrivals per virtual second over the
    /// arrival span.
    pub offered_rate: f64,
    /// Achieved throughput: completions per virtual second of makespan.
    pub achieved_rate: f64,
    /// Virtual makespan: the latest completion instant.
    pub makespan: f64,
    /// Aggregated latency distribution (shared percentile machinery),
    /// produced by folding the per-kind histograms with
    /// [`LogHistogram::merge`](crate::obs::LogHistogram::merge).
    pub latency: LatencyStats,
    /// Latency distribution per op kind, from the same recording
    /// pass.
    pub latency_by_kind: LatencyByKind,
    /// Every per-operation virtual latency, seconds, ascending.
    pub latencies: Vec<f64>,
    /// Busy (service) seconds accumulated per device.
    pub device_busy: Vec<f64>,
    /// Per-device utilization over the makespan.
    pub utilization: Vec<f64>,
    /// Ranged-read outcomes.
    pub gets: OpKindStats,
    /// Full-walk scan outcomes.
    pub scans: OpKindStats,
    /// Append outcomes.
    pub appends: OpKindStats,
    /// Reads returned across all get results.
    pub reads_served: u64,
    /// Bases returned across all get results.
    pub bases_served: u64,
}

impl QosReport {
    /// Shed fraction of the offered load in `[0, 1]`.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Mean device-service seconds per completed operation (0 when
    /// nothing completed or nothing was charged).
    pub fn mean_service_secs(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.device_busy.iter().sum::<f64>() / self.completed as f64
    }

    /// The fleet capacity this drive implies: operations per virtual
    /// second that `devices` parallel devices can absorb at this op
    /// stream's mean service demand. Meaningful when the drive ran
    /// far below saturation (a trickle-rate calibration run) — the
    /// `qos_sweep` bench anchors its offered-rate grid on it.
    pub fn capacity_estimate(&self, devices: usize) -> f64 {
        let mean = self.mean_service_secs();
        if mean <= 0.0 {
            return 0.0;
        }
        devices as f64 / mean
    }

    /// Shed arrivals per op kind: `(gets, scans, appends)`.
    pub fn shed_by_kind(&self) -> (u64, u64, u64) {
        let mut n = (0u64, 0u64, 0u64);
        for e in &self.shed_events {
            match e.kind {
                OpKind::Get => n.0 += 1,
                OpKind::Scan => n.1 += 1,
                OpKind::Append => n.2 += 1,
            }
        }
        n
    }

    /// Shed arrivals per tenant, as ascending `(tenant, count)`
    /// pairs (tenants that shed nothing are absent). Single-tenant
    /// drives attribute every shed to tenant 0; multi-tenant drives
    /// ([`Dataset::drive_tenants`](super::MultiTenantSpec)) attribute
    /// each shed to the tenant whose arrival was turned away.
    pub fn shed_by_tenant(&self) -> Vec<(usize, u64)> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.shed_events {
            *counts.entry(e.tenant).or_insert(0u64) += 1;
        }
        counts.into_iter().collect()
    }

    /// Chunk-touch hit rate across all op kinds.
    pub fn overall_hit_rate(&self) -> f64 {
        let hits = self.gets.chunk_hits + self.scans.chunk_hits + self.appends.chunk_hits;
        let total =
            hits + self.gets.chunk_misses + self.scans.chunk_misses + self.appends.chunk_misses;
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }
}

impl Dataset {
    /// Drives an **open loop** against the dataset: requests are
    /// injected at arrival instants generated by `spec.arrivals` on
    /// the virtual timeline *regardless of completions* — unlike
    /// [`Dataset::drive_closed_loop`], offered load does not slow down
    /// when the store saturates, which is what makes
    /// latency–throughput curves to saturation measurable. An arrival
    /// that finds `spec.queue_depth` admitted operations still
    /// incomplete at its instant is **shed** and counted, the
    /// deterministic open-loop analogue of
    /// [`SubmitMode::Fail`](super::SubmitMode::Fail) load shedding.
    ///
    /// The drive runs on its own reactor (its own virtual clock
    /// starting at 0) and serializes execution, so a fixed
    /// `(spec.seed, spec)` on an identically-prepared dataset (same
    /// encode, cold cache) reproduces the [`QosReport`] bit-for-bit.
    ///
    /// ```
    /// use sage_store::client::DatasetBuilder;
    /// use sage_store::client::workload::{Arrivals, OpenLoopSpec};
    /// use sage_genomics::sim::{simulate_dataset, DatasetProfile};
    /// use sage_ssd::SsdConfig;
    ///
    /// # fn main() -> Result<(), sage_store::StoreError> {
    /// let ds = simulate_dataset(&DatasetProfile::tiny_short(), 11);
    /// let dataset = DatasetBuilder::new()
    ///     .chunk_reads(16)
    ///     .cache_chunks(0)              // every op pays its device
    ///     .ssd(SsdConfig::pcie())
    ///     .encode(&ds.reads)?;
    ///
    /// let mut spec = OpenLoopSpec::new(Arrivals::Poisson { rate: 50.0 });
    /// spec.requests = 64;
    /// let report = dataset.drive_open_loop(&spec)?;
    /// assert_eq!(report.offered, 64);
    /// assert_eq!(report.completed + report.shed, 64);
    /// assert!(report.latency.p99_ms >= report.latency.p50_ms);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::Config`] for an invalid spec; otherwise
    /// the first operation error, if any operation fails.
    pub fn drive_open_loop(&self, spec: &OpenLoopSpec) -> Result<QosReport> {
        spec.validate()?;
        let engine = Arc::clone(self.engine());
        let total = engine.total_reads();
        // When appends are in the mix, the template is sampled before
        // the drive's clock starts (warming the chunks it touches).
        let append_template = if spec.mix.append > 0.0 && total > 0 {
            engine.get(0..total.min(4))?
        } else {
            ReadSet::new()
        };
        let devices = engine.n_devices().max(1);
        // On a tracing dataset each completed op also lands in the
        // dataset's span buffer with its per-charge service windows
        // (call `TraceBuffer::clear` between drives to keep runs
        // separable). Interval recording is observation-only: the
        // drive's timeline and report are bit-identical either way.
        let trace_buf = self.trace();
        let reactor = Reactor::start(
            Arc::new(EngineBackend::new(engine)),
            IoConfig {
                workers: spec.workers,
                queue_depth: spec.queue_depth,
                devices,
                record_intervals: trace_buf.is_some(),
                policy: SchedPolicyKind::Fifo,
            },
        );
        let cq = reactor.completions();

        let mut arrivals = spec.arrivals.process();
        let mut arrival_rng = WorkloadRng::new(spec.seed ^ ARRIVAL_STREAM);
        let mut ops = OpStream::new(
            &spec.pattern,
            spec.mix,
            spec.seed ^ OP_STREAM,
            total,
            append_template,
        );

        let mut clock = 0.0f64;
        // Completion instants of admitted ops; entries ≤ the current
        // arrival instant have drained from the virtual queue.
        let mut inflight: Vec<f64> = Vec::with_capacity(spec.queue_depth);
        let mut shed = 0u64;
        let mut shed_rng = WorkloadRng::new(spec.seed ^ SHED_STREAM);
        let mut shed_events: Vec<ShedEvent> = Vec::new();
        let mut makespan = 0.0f64;
        let mut latencies = Vec::with_capacity(spec.requests as usize);
        let mut gets = OpKindStats::default();
        let mut scans = OpKindStats::default();
        let mut appends = OpKindStats::default();
        // One latency histogram per kind, recorded in completion
        // order; the run total is their merge fold.
        let mut hists = [
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        ];
        let mut reads_served = 0u64;
        let mut bases_served = 0u64;
        for i in 0..spec.requests {
            clock += arrivals.next_interarrival(&mut arrival_rng).max(0.0);
            inflight.retain(|done| *done > clock);
            if inflight.len() >= spec.queue_depth {
                shed += 1;
                shed_events.push(ShedEvent {
                    kind: spec.mix.pick(&mut shed_rng),
                    arrival_vt: clock,
                    tenant: 0,
                });
                continue;
            }
            let (op, kind) = ops.next_op();
            reactor.submit(op, i, clock).expect("live reactor");
            // Lockstep harvest: dispatch order equals arrival order,
            // which keeps the virtual timeline bit-deterministic for
            // any worker count.
            let cqe = cq.wait_any().expect("submitted op completes");
            let latency = cqe.latency();
            let (submitted_vt, started_vt, completed_vt) =
                (cqe.submitted_vt, cqe.started_vt, cqe.completed_vt);
            let (device, device_seconds, intervals) =
                (cqe.device, cqe.device_seconds, cqe.intervals);
            let (value, trace) = cqe.output?;
            if let Some(buf) = &trace_buf {
                buf.record(OpSpan {
                    token: i,
                    tenant: 0,
                    kind: kind.label(),
                    submitted_vt,
                    started_vt,
                    completed_vt,
                    device,
                    device_seconds,
                    intervals,
                    chunks_touched: trace.chunks_touched,
                    cache_hits: trace.cache_hits,
                    cache_misses: trace.cache_misses,
                    device_ops: trace.device_ops,
                    events: trace.events.clone(),
                });
            }
            match kind {
                OpKind::Get => gets.record(&trace),
                OpKind::Scan => scans.record(&trace),
                OpKind::Append => appends.record(&trace),
            }
            hists[kind as usize].record(latency);
            if let (OpKind::Get, OpValue::Reads(rs)) = (kind, &value) {
                reads_served += rs.len() as u64;
                bases_served += rs.total_bases() as u64;
            }
            latencies.push(latency);
            makespan = makespan.max(completed_vt);
            inflight.push(completed_vt);
        }
        let snap = reactor.snapshot();
        reactor.shutdown();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let completed = latencies.len() as u64;
        let latency_by_kind = LatencyByKind {
            gets: LatencyStats::from_histogram(&hists[0]),
            scans: LatencyStats::from_histogram(&hists[1]),
            appends: LatencyStats::from_histogram(&hists[2]),
        };
        // Run total = merge fold of the per-kind histograms: bucket
        // counts and extrema equal one histogram fed every latency.
        let mut total_hist = hists[0].clone();
        total_hist.merge(&hists[1]);
        total_hist.merge(&hists[2]);
        Ok(QosReport {
            offered: spec.requests,
            completed,
            shed,
            shed_events,
            offered_rate: if clock > 0.0 {
                spec.requests as f64 / clock
            } else {
                spec.arrivals.mean_rate()
            },
            achieved_rate: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            makespan,
            latency: LatencyStats::from_histogram(&total_hist),
            latency_by_kind,
            utilization: snap.utilization_over(makespan),
            device_busy: snap.device_busy,
            latencies,
            gets,
            scans,
            appends,
            reads_served,
            bases_served,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DatasetBuilder;
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};
    use sage_ssd::SsdConfig;

    fn fleet_dataset(devices: usize) -> Dataset {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 77).reads;
        DatasetBuilder::new()
            .chunk_reads(16)
            .cache_chunks(0)
            .ssd_fleet((0..devices).map(|_| SsdConfig::pcie()).collect())
            .encode(&reads)
            .expect("build")
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = WorkloadRng::new(42);
        let mut b = WorkloadRng::new(42);
        let draws: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        assert_eq!(draws, (0..64).map(|_| b.next_u64()).collect::<Vec<_>>());
        let mut c = WorkloadRng::new(7);
        let fs: Vec<f64> = (0..4096).map(|_| c.next_f64()).collect();
        assert!(fs.iter().all(|f| (0.0..1.0).contains(f)));
        let m = mean(&fs);
        assert!((m - 0.5).abs() < 0.05, "mean {m} far from 0.5");
        assert!(c.below(0) == 0 && c.below(1) == 0);
    }

    #[test]
    fn poisson_gaps_have_the_configured_mean() {
        let mut rng = WorkloadRng::new(3);
        let mut p = PoissonArrivals { rate: 200.0 };
        let gaps: Vec<f64> = (0..8192).map(|_| p.next_interarrival(&mut rng)).collect();
        assert!(gaps.iter().all(|g| *g >= 0.0 && g.is_finite()));
        let m = mean(&gaps);
        assert!((m - 1.0 / 200.0).abs() < 0.1 / 200.0, "mean gap {m}");
        // Fixed arrivals: every gap exactly 1/rate.
        let mut f = FixedArrivals { rate: 50.0 };
        assert_eq!(f.next_interarrival(&mut rng), 0.02);
        assert_eq!(f.next_interarrival(&mut rng), 0.02);
    }

    #[test]
    fn bursty_long_run_rate_is_duty_cycled() {
        let cfg = Arrivals::Bursty {
            on_rate: 1000.0,
            mean_on: 0.05,
            mean_off: 0.15,
        };
        assert!((cfg.mean_rate() - 250.0).abs() < 1e-9);
        let mut rng = WorkloadRng::new(9);
        let mut p = cfg.process();
        let n = 20_000;
        let span: f64 = (0..n).map(|_| p.next_interarrival(&mut rng)).sum();
        let measured = n as f64 / span;
        assert!(
            (measured - 250.0).abs() < 25.0,
            "long-run bursty rate {measured} far from 250"
        );
    }

    #[test]
    fn zipf_concentrates_on_hot_slots() {
        let total = 10_000u64;
        let span = 100u64;
        let mut z = ZipfPattern::new(total, span, 1.1);
        assert_eq!(z.slots(), 100);
        let mut rng = WorkloadRng::new(5);
        let mut hot = 0usize;
        let n = 4096;
        for _ in 0..n {
            let r = z.next_range(&mut rng);
            assert!(r.end <= total && r.start < r.end);
            if r.start / span < 5 {
                hot += 1;
            }
        }
        // Under uniform the first 5 of 100 slots would get ~5%.
        assert!(
            hot as f64 / n as f64 > 0.35,
            "zipf hot share {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn sequential_wraps_and_hotspot_concentrates() {
        let mut s = SequentialPattern::new(50, 20);
        let mut rng = WorkloadRng::new(1);
        assert_eq!(s.next_range(&mut rng), 0..20);
        assert_eq!(s.next_range(&mut rng), 20..40);
        assert_eq!(s.next_range(&mut rng), 40..50);
        assert_eq!(s.next_range(&mut rng), 0..20);

        let mut h = HotspotPattern::new(10_000, 8, 0.1, 0.9);
        let mut hot = 0usize;
        let n = 4096;
        for _ in 0..n {
            if h.next_range(&mut rng).start < 1000 {
                hot += 1;
            }
        }
        let share = hot as f64 / n as f64;
        assert!((share - 0.9).abs() < 0.05, "hotspot share {share}");
    }

    #[test]
    fn op_mix_picks_by_weight() {
        let mix = OpMix {
            get: 0.5,
            scan: 0.25,
            append: 0.25,
        };
        let mut stream =
            OpStream::new(&Pattern::Uniform { span: 4 }, mix, 17, 1000, ReadSet::new());
        let mut counts = [0usize; 3];
        for _ in 0..4096 {
            match stream.next_op().1 {
                OpKind::Get => counts[0] += 1,
                OpKind::Scan => counts[1] += 1,
                OpKind::Append => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / 4096.0 - 0.5).abs() < 0.05);
        assert!((counts[1] as f64 / 4096.0 - 0.25).abs() < 0.05);
        assert!((counts[2] as f64 / 4096.0 - 0.25).abs() < 0.05);
    }

    #[test]
    fn spec_validation_rejects_degenerate_knobs() {
        let good = OpenLoopSpec::new(Arrivals::Poisson { rate: 100.0 });
        assert!(good.validate().is_ok());
        let mut bad = good;
        bad.arrivals = Arrivals::Fixed { rate: 0.0 };
        assert_eq!(bad.validate(), Err(ConfigError::NonPositiveRate));
        let mut bad = good;
        bad.pattern = Pattern::Uniform { span: 0 };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroSpan));
        let mut bad = good;
        bad.pattern = Pattern::Hotspot {
            hot_fraction: 0.1,
            hot_weight: f64::NAN,
            span: 8,
        };
        assert_eq!(bad.validate(), Err(ConfigError::NonPositiveRate));
        let mut bad = good;
        bad.pattern = Pattern::Hotspot {
            hot_fraction: 1.5,
            hot_weight: 0.9,
            span: 8,
        };
        assert_eq!(bad.validate(), Err(ConfigError::NonPositiveRate));
        let mut bad = good;
        bad.mix = OpMix {
            get: 0.0,
            scan: 0.0,
            append: 0.0,
        };
        assert_eq!(bad.validate(), Err(ConfigError::DegenerateOpMix));
        let mut bad = good;
        bad.queue_depth = 0;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroQueueDepth));
        let mut bad = good;
        bad.workers = 0;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroServerWorkers));
        // An invalid spec surfaces as a typed StoreError.
        let dataset = fleet_dataset(1);
        let mut spec = OpenLoopSpec::new(Arrivals::Poisson { rate: -1.0 });
        spec.requests = 4;
        assert!(matches!(
            dataset.drive_open_loop(&spec),
            Err(crate::StoreError::Config(ConfigError::NonPositiveRate))
        ));
    }

    #[test]
    fn open_loop_measures_the_virtual_timeline() {
        let dataset = fleet_dataset(2);
        let mut spec = OpenLoopSpec::new(Arrivals::Poisson { rate: 100.0 });
        spec.requests = 64;
        let report = dataset.drive_open_loop(&spec).expect("drive");
        assert_eq!(report.offered, 64);
        assert_eq!(report.completed + report.shed, 64);
        assert_eq!(report.latencies.len() as u64, report.completed);
        assert!(report.makespan > 0.0);
        assert!(report.achieved_rate > 0.0);
        assert!(report.offered_rate > 0.0);
        assert!(report.latency.p99_ms >= report.latency.p50_ms);
        assert!(report.gets.ops == report.completed);
        assert_eq!(report.gets.chunk_hits, 0); // cache disabled
        assert!(report.gets.chunk_misses > 0);
        assert!(report.reads_served > 0 && report.bases_served > 0);
        assert_eq!(report.utilization.len(), 2);
        assert!(report.device_busy.iter().any(|b| *b > 0.0));
    }

    #[test]
    fn overload_sheds_and_saturates() {
        // An absurd arrival rate against one device must shed most of
        // the offered load once the virtual queue fills.
        let run = |rate: f64, depth: usize| {
            let dataset = fleet_dataset(1);
            let mut spec = OpenLoopSpec::new(Arrivals::Fixed { rate });
            spec.requests = 128;
            spec.queue_depth = depth;
            dataset.drive_open_loop(&spec).expect("drive")
        };
        let overloaded = run(1e7, 8);
        assert!(overloaded.shed > 0, "overload must shed");
        assert!(overloaded.shed_fraction() > 0.5);
        assert!(overloaded.achieved_rate < overloaded.offered_rate);
        // Every shed arrival carries its context: would-be kind and
        // arrival instant, in nondecreasing arrival order.
        assert_eq!(overloaded.shed_events.len() as u64, overloaded.shed);
        let (sg, ss, sa) = overloaded.shed_by_kind();
        assert_eq!(sg + ss + sa, overloaded.shed);
        assert_eq!(sg, overloaded.shed, "a pure-get mix sheds only gets");
        assert!(overloaded
            .shed_events
            .windows(2)
            .all(|w| w[0].arrival_vt <= w[1].arrival_vt));
        assert!(overloaded
            .shed_events
            .iter()
            .all(|e| e.arrival_vt.is_finite() && e.arrival_vt >= 0.0));
        // A gentle rate through the same machinery sheds nothing.
        let calm = run(10.0, 8);
        assert_eq!(calm.shed, 0);
        assert_eq!(calm.completed, 128);
        // Overload latency (bounded by the queue) still exceeds calm.
        assert!(overloaded.latency.p99_ms > calm.latency.p99_ms);
    }

    #[test]
    fn same_seed_same_spec_is_bit_identical() {
        let run = || {
            let dataset = fleet_dataset(2);
            let mut spec = OpenLoopSpec::new(Arrivals::Bursty {
                on_rate: 4000.0,
                mean_on: 0.01,
                mean_off: 0.01,
            });
            spec.pattern = Pattern::Zipf {
                theta: 1.0,
                span: 16,
            };
            spec.requests = 96;
            spec.queue_depth = 16;
            spec.seed = 0xfeed;
            dataset.drive_open_loop(&spec).expect("drive")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical seed+spec must reproduce the QosReport");
        assert!(a.completed > 0);
    }

    #[test]
    fn mixed_streams_report_per_kind_outcomes() {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 78).reads;
        let dataset = DatasetBuilder::new()
            .chunk_reads(16)
            .cache_chunks(4)
            .encode(&reads)
            .expect("build");
        let before = dataset.total_reads();
        let mut spec = OpenLoopSpec::new(Arrivals::Poisson { rate: 500.0 });
        spec.mix = OpMix {
            get: 0.8,
            scan: 0.1,
            append: 0.1,
        };
        spec.requests = 80;
        let report = dataset.drive_open_loop(&spec).expect("drive");
        assert!(report.gets.ops > 0 && report.scans.ops > 0 && report.appends.ops > 0);
        assert_eq!(
            report.gets.ops + report.scans.ops + report.appends.ops,
            report.completed
        );
        // Appends really landed.
        assert!(dataset.total_reads() > before);
        // Scans walk chunks; with a warm cache some touches hit.
        assert!(report.scans.chunk_hits + report.scans.chunk_misses > 0);
        assert!(report.overall_hit_rate() > 0.0);
    }

    #[test]
    fn shed_attribution_follows_the_mix() {
        // Overload a mixed stream: shed kinds come from a dedicated
        // stream with the mix's own weights, so a weight-0 kind never
        // appears and the dominant kind dominates.
        let dataset = fleet_dataset(1);
        let mut spec = OpenLoopSpec::new(Arrivals::Fixed { rate: 1e7 });
        spec.mix = OpMix {
            get: 0.9,
            scan: 0.1,
            append: 0.0,
        };
        spec.requests = 256;
        spec.queue_depth = 4;
        let report = dataset.drive_open_loop(&spec).expect("drive");
        assert!(report.shed > 100, "deep overload expected");
        let (sg, ss, sa) = report.shed_by_kind();
        assert_eq!(sa, 0, "weight-0 appends must never be attributed");
        assert_eq!(sg + ss, report.shed);
        assert!(
            sg > ss,
            "gets dominate the mix so they dominate sheds: {sg} vs {ss}"
        );
        for e in &report.shed_events {
            assert!(matches!(e.kind, OpKind::Get | OpKind::Scan));
            assert_eq!(e.kind.label() == "get", e.kind == OpKind::Get);
        }
    }

    #[test]
    fn traced_open_loop_records_replayable_spans() {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 77).reads;
        let traced_ds = DatasetBuilder::new()
            .chunk_reads(16)
            .cache_chunks(0)
            .ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::pcie()])
            .tracing(true)
            .encode(&reads)
            .expect("build");
        let mut spec = OpenLoopSpec::new(Arrivals::Poisson { rate: 100.0 });
        spec.requests = 64;
        let traced = traced_ds.drive_open_loop(&spec).expect("traced drive");
        // Bit-identical to the untraced fixture dataset (same reads,
        // same encode, same spec): tracing observes, never perturbs.
        let plain = fleet_dataset(2).drive_open_loop(&spec).expect("drive");
        assert_eq!(plain, traced);

        let buf = traced_ds.trace().expect("tracing dataset has a buffer");
        let spans = buf.spans();
        assert_eq!(spans.len() as u64, traced.completed);
        assert!(spans.iter().all(|s| !s.intervals.is_empty()));
        let replay = crate::obs::replay(&spans, 2);
        assert!(replay.exact(), "{} mismatches", replay.mismatches);
        assert_eq!(replay.device_busy, traced.device_busy);
    }
}
