//! The shared closed-loop load driver.
//!
//! One machinery for every serving measurement: `clients` logical
//! clients each keep exactly one operation in flight against a
//! dedicated reactor, submitting their next operation at the virtual
//! instant the previous one completed. All reported numbers come from
//! the **virtual** device timeline — requests per virtual second
//! against the makespan, latency percentiles, per-device utilization
//! — so a sweep measures queueing and striping, not the host's load.
//! With `workers == 1` the timeline is fully deterministic (dispatch
//! order = submission order), which is what lets benches assert
//! monotonicity without flaking.
//!
//! The `io_sweep` and `fig15_multissd` benches and the pipeline's
//! store-served preparation scenario all drive this one loop.

use super::stats::{LatencyByKind, LatencyStats};
use super::workload::{OpKind, OpKindStats};
use super::Dataset;
use crate::engine::{EngineBackend, OpValue, StoreOp};
use crate::obs::{LogHistogram, OpSpan};
use crate::Result;
use sage_io::{IoConfig, Reactor, SchedPolicyKind};
use std::sync::Arc;

/// Sizing of one closed-loop drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopSpec {
    /// Logical clients, each keeping one operation in flight (this is
    /// the offered queue depth).
    pub clients: usize,
    /// Total operations to drive through the loop.
    pub requests: u64,
    /// Reactor worker threads. 1 keeps the virtual timeline fully
    /// deterministic; more overlaps real decode work without changing
    /// what the virtual clock charges.
    pub workers: usize,
}

impl Default for ClosedLoopSpec {
    fn default() -> ClosedLoopSpec {
        ClosedLoopSpec {
            clients: 16,
            requests: 256,
            workers: 1,
        }
    }
}

/// What a closed-loop drive measured (virtual-time metrics).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations completed.
    pub completed: u64,
    /// Virtual makespan: the latest completion instant.
    pub makespan: f64,
    /// Operations per virtual second.
    pub req_per_s: f64,
    /// Aggregated latency distribution — the same percentile
    /// machinery ([`LatencyStats`]) the open-loop
    /// [`QosReport`](super::workload::QosReport) uses, produced by
    /// folding the per-kind histograms with
    /// [`LogHistogram::merge`](crate::obs::LogHistogram::merge).
    pub latency: LatencyStats,
    /// Latency distribution per op kind, from the same recording
    /// pass.
    pub latency_by_kind: LatencyByKind,
    /// Every per-operation virtual latency, seconds, ascending.
    pub latencies: Vec<f64>,
    /// Busy (service) seconds accumulated per device.
    pub device_busy: Vec<f64>,
    /// Per-device utilization over the makespan.
    pub utilization: Vec<f64>,
    /// Reads returned across all get/scan results.
    pub reads_served: u64,
    /// Bases returned across all get/scan results.
    pub bases_served: u64,
    /// Ranged-read outcomes — the same per-kind accounting
    /// ([`OpKindStats`]) the open-loop report carries.
    pub gets: OpKindStats,
    /// Full-walk scan outcomes.
    pub scans: OpKindStats,
    /// Append outcomes.
    pub appends: OpKindStats,
}

impl LoadReport {
    /// Bases served per virtual second (the store's sustained
    /// preparation rate).
    pub fn bases_per_sec(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.bases_served as f64 / self.makespan
    }
}

/// The harnesses' shared deterministic random-range stream: SplitMix64
/// over `(client, seq)` producing a start in `[0, total)` and a span
/// in `[1, span_max]` (clamped to the dataset end). Every closed-loop
/// consumer — `io_sweep`, `fig15_multissd`, the pipeline's
/// store-served scenario — draws from this one stream, so their
/// measurements stay comparable by construction.
fn kind_of(op: &StoreOp) -> OpKind {
    match op {
        StoreOp::Get(_) => OpKind::Get,
        StoreOp::Scan(_) => OpKind::Scan,
        StoreOp::Append(_) => OpKind::Append,
    }
}

pub fn range_for(client: u64, seq: u64, total: u64, span_max: u64) -> std::ops::Range<u64> {
    let mut z = (client << 32 | seq).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let start = z % total;
    let end = (start + 1 + z % span_max).min(total);
    start..end
}

impl Dataset {
    /// Drives `spec.requests` operations through a dedicated reactor
    /// in a closed loop: `spec.clients` logical clients each submit
    /// their next operation — produced by `workload(client, seq)` —
    /// at the virtual instant their previous one completed.
    ///
    /// The drive runs on its own reactor (and thus its own virtual
    /// clock starting at 0), so measurements are independent of any
    /// session traffic on the dataset; the engine, cache, and device
    /// state are shared.
    ///
    /// # Errors
    ///
    /// The first operation error, if any operation fails.
    pub fn drive_closed_loop(
        &self,
        spec: &ClosedLoopSpec,
        mut workload: impl FnMut(u64, u64) -> StoreOp,
    ) -> Result<LoadReport> {
        let engine = Arc::clone(self.engine());
        let devices = engine.n_devices().max(1);
        // On a tracing dataset each completed op also lands in the
        // dataset's span buffer (observation-only: the timeline and
        // report are bit-identical either way).
        let trace_buf = self.trace();
        let reactor = Reactor::start(
            Arc::new(EngineBackend::new(engine)),
            IoConfig {
                workers: spec.workers.max(1),
                queue_depth: spec.clients.max(1),
                devices,
                record_intervals: trace_buf.is_some(),
                policy: SchedPolicyKind::Fifo,
            },
        );
        let cq = reactor.completions();

        let clients = spec.clients.max(1) as u64;
        let mut next_seq = vec![1u64; clients as usize];
        // Each client's in-flight op kind, indexed by `user_data`, so
        // harvested completions attribute to the right OpKindStats.
        let mut in_flight_kind = vec![OpKind::Get; clients as usize];
        // Seed every client's first operation through one batched
        // ring-lock acquisition instead of one lock round per client.
        let seeds: Vec<_> = (0..clients.min(spec.requests))
            .map(|c| {
                let op = workload(c, 0);
                in_flight_kind[c as usize] = kind_of(&op);
                (op, c, 0.0)
            })
            .collect();
        let mut issued = seeds.len() as u64;
        reactor.submit_batch(seeds).expect("live reactor");
        let mut latencies = Vec::with_capacity(spec.requests as usize);
        let mut makespan = 0.0f64;
        let mut reads_served = 0u64;
        let mut bases_served = 0u64;
        let mut gets = OpKindStats::default();
        let mut scans = OpKindStats::default();
        let mut appends = OpKindStats::default();
        // One latency histogram per kind, recorded in completion
        // order; the run total is their merge fold.
        let mut hists = [
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        ];
        let mut token = 0u64;
        while (latencies.len() as u64) < spec.requests {
            let Some(cqe) = cq.wait_any() else {
                break;
            };
            let latency = cqe.latency();
            let c = cqe.user_data;
            let kind = in_flight_kind[c as usize];
            let (submitted_vt, started_vt, completed_vt) =
                (cqe.submitted_vt, cqe.started_vt, cqe.completed_vt);
            let (device, device_seconds, intervals) =
                (cqe.device, cqe.device_seconds, cqe.intervals);
            let (value, trace) = cqe.output?;
            if let Some(buf) = &trace_buf {
                buf.record(OpSpan {
                    token,
                    tenant: 0,
                    kind: kind.label(),
                    submitted_vt,
                    started_vt,
                    completed_vt,
                    device,
                    device_seconds,
                    intervals,
                    chunks_touched: trace.chunks_touched,
                    cache_hits: trace.cache_hits,
                    cache_misses: trace.cache_misses,
                    device_ops: trace.device_ops,
                    events: trace.events.clone(),
                });
            }
            token += 1;
            match kind {
                OpKind::Get => gets.record(&trace),
                OpKind::Scan => scans.record(&trace),
                OpKind::Append => appends.record(&trace),
            }
            hists[kind as usize].record(latency);
            if let OpValue::Reads(rs) = &value {
                reads_served += rs.len() as u64;
                bases_served += rs.total_bases() as u64;
            }
            latencies.push(latency);
            makespan = makespan.max(completed_vt);
            if issued < spec.requests {
                let i = next_seq[c as usize];
                next_seq[c as usize] += 1;
                let op = workload(c, i);
                in_flight_kind[c as usize] = kind_of(&op);
                // Closed loop: the client's next operation departs at
                // the virtual instant its previous one completed.
                reactor.submit(op, c, completed_vt).expect("live reactor");
                issued += 1;
            }
        }
        let snap = reactor.snapshot();
        reactor.shutdown();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let completed = latencies.len() as u64;
        let latency_by_kind = LatencyByKind {
            gets: LatencyStats::from_histogram(&hists[0]),
            scans: LatencyStats::from_histogram(&hists[1]),
            appends: LatencyStats::from_histogram(&hists[2]),
        };
        // Run total = merge fold of the per-kind histograms: bucket
        // counts and extrema equal one histogram fed every latency.
        let mut total_hist = hists[0].clone();
        total_hist.merge(&hists[1]);
        total_hist.merge(&hists[2]);
        Ok(LoadReport {
            completed,
            makespan,
            req_per_s: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            latency: LatencyStats::from_histogram(&total_hist),
            latency_by_kind,
            utilization: snap.utilization_over(makespan),
            device_busy: snap.device_busy,
            latencies,
            reads_served,
            bases_served,
            gets,
            scans,
            appends,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DatasetBuilder;
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};
    use sage_ssd::SsdConfig;

    fn fleet_dataset(devices: usize) -> crate::client::Dataset {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 33).reads;
        DatasetBuilder::new()
            .chunk_reads(16)
            .cache_chunks(0) // every op pays its device
            .ssd_fleet((0..devices).map(|_| SsdConfig::pcie()).collect())
            .encode(&reads)
            .expect("build")
    }

    #[test]
    fn closed_loop_measures_the_virtual_timeline() {
        let dataset = fleet_dataset(2);
        let total = dataset.total_reads();
        let report = dataset
            .drive_closed_loop(
                &ClosedLoopSpec {
                    clients: 4,
                    requests: 64,
                    workers: 1,
                },
                |c, i| StoreOp::Get(range_for(c, i, total, 16)),
            )
            .expect("drive");
        assert_eq!(report.completed, 64);
        assert_eq!(report.latencies.len(), 64);
        assert!(report.makespan > 0.0);
        assert!(report.req_per_s > 0.0);
        assert!(report.latency.p99_ms >= report.latency.p50_ms);
        assert!(report.latency.mean_ms > 0.0);
        assert_eq!(report.latency.count, 64);
        assert!(report.reads_served >= 64);
        assert!(report.bases_served > 0);
        assert!(report.bases_per_sec() > 0.0);
        assert_eq!(report.utilization.len(), 2);
        assert!(report.device_busy.iter().any(|b| *b > 0.0));
        assert_eq!(report.gets.ops, 64);
        assert_eq!(report.scans.ops, 0);
        assert_eq!(report.appends.ops, 0);
        // Per-kind latency view: all-gets drive means the gets
        // histogram IS the run total.
        assert_eq!(report.latency_by_kind.gets.count, 64);
        assert_eq!(report.latency_by_kind.scans.count, 0);
        assert_eq!(report.latency_by_kind.gets, report.latency);
        assert!(report.gets.chunk_hits + report.gets.chunk_misses > 0);
    }

    #[test]
    fn deeper_loops_trade_latency_for_throughput() {
        // The io_sweep claim in miniature: on one device, a deeper
        // closed loop cannot lower p99 latency.
        let mean_at = |clients: usize| {
            let dataset = fleet_dataset(1);
            let total = dataset.total_reads();
            dataset
                .drive_closed_loop(
                    &ClosedLoopSpec {
                        clients,
                        requests: 48,
                        workers: 1,
                    },
                    |c, i| StoreOp::Get(range_for(c, i, total, 8)),
                )
                .expect("drive")
                .latency
                .mean_ms
        };
        let shallow = mean_at(1);
        let deep = mean_at(8);
        assert!(
            deep > shallow * 2.0,
            "depth-8 mean latency {deep} should far exceed depth-1 {shallow}"
        );
    }

    #[test]
    fn striping_scales_closed_loop_throughput() {
        let run = |devices: usize| {
            let dataset = fleet_dataset(devices);
            let total = dataset.total_reads();
            dataset
                .drive_closed_loop(
                    &ClosedLoopSpec {
                        clients: 8,
                        requests: 96,
                        workers: 2,
                    },
                    |c, i| StoreOp::Get(range_for(c, i, total, 16)),
                )
                .expect("drive")
                .req_per_s
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four > one * 1.5,
            "striping 1→4 devices must scale req/s: {one} → {four}"
        );
    }

    #[test]
    fn failing_ops_surface_their_error() {
        let dataset = fleet_dataset(1);
        let total = dataset.total_reads();
        let err = dataset
            .drive_closed_loop(
                &ClosedLoopSpec {
                    clients: 2,
                    requests: 8,
                    workers: 1,
                },
                |_, _| StoreOp::Get(0..total * 100),
            )
            .unwrap_err();
        assert!(matches!(err, crate::StoreError::RangeOutOfBounds { .. }));
    }
}
