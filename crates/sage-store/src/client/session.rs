//! The serving core: [`Dataset`] (engine + reactor + dispatcher) and
//! [`Session`] (the typed submission front end).

use super::tenant::{TenantId, TenantSpec};
use super::{extract_appended, extract_reads, OpReport, Payload, SubmitMode, Ticket};
use crate::engine::{EngineBackend, StoreEngine, StoreOp};
use crate::lru::{CacheSnapshot, StripeSnapshot};
use crate::obs::analysis::BlameReport;
use crate::obs::{MetricsSnapshot, TraceBuffer};
use crate::timing::TimingSnapshot;
use crate::view::ReadView;
use crate::{Result, StoreError};
use sage_genomics::{Read, ReadSet};
use sage_io::{
    Cqe, DeviceSnapshot, IoConfig, Reactor, ReactorSnapshot, SchedPolicyKind, SubmitError,
};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Operations accepted into the submission ring.
    pub submitted: u64,
    /// Operations completed (answered or failed).
    pub completed: u64,
    /// [`SubmitMode::Fail`] submissions shed because the ring was
    /// full.
    pub rejected: u64,
    /// Operations cancelled by a shutdown while still queued.
    pub cancelled: u64,
    /// Operations queued in the ring right now.
    pub queued: usize,
}

/// In-flight submissions by token: each op's ticket channel plus its
/// kind label and tenant (for span recording).
type PendingMap = Mutex<HashMap<u64, (SyncSender<Payload>, &'static str, usize)>>;

/// The shared serving state behind [`Dataset`] and every [`Session`].
#[derive(Debug)]
pub(crate) struct ServeCore {
    engine: Arc<StoreEngine>,
    /// `None` after teardown; submissions then fail with
    /// [`StoreError::QueueClosed`]. Read-locked per submit (the
    /// reactor itself is `&self`-concurrent), write-locked once to
    /// take it down.
    reactor: RwLock<Option<Reactor<EngineBackend>>>,
    pending: Arc<PendingMap>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    next_token: AtomicU64,
    cancelled: Arc<AtomicU64>,
    /// The dataset's span sink; `None` when tracing is off.
    trace: Option<Arc<TraceBuffer>>,
    /// Registered tenants, in [`TenantId`] order; never empty (a
    /// dataset serving without explicit tenants gets the one default
    /// tenant).
    tenants: Vec<TenantSpec>,
}

impl ServeCore {
    fn start(
        engine: Arc<StoreEngine>,
        workers: usize,
        queue_depth: usize,
        trace: Option<Arc<TraceBuffer>>,
        tenants: Vec<TenantSpec>,
    ) -> ServeCore {
        let reactor = Reactor::start(
            Arc::new(EngineBackend::new(Arc::clone(&engine))),
            IoConfig {
                workers,
                queue_depth,
                devices: engine.n_devices().max(1),
                record_intervals: trace.is_some(),
                policy: SchedPolicyKind::Fifo,
            },
        );
        let pending: Arc<PendingMap> = Arc::new(Mutex::new(HashMap::new()));
        let cancelled = Arc::new(AtomicU64::new(0));
        let cq = reactor.completions();
        let dispatcher = {
            let pending = Arc::clone(&pending);
            let cancelled = Arc::clone(&cancelled);
            let trace_buf = trace.clone();
            std::thread::spawn(move || {
                while let Some(cqe) = cq.wait_any() {
                    let Cqe {
                        user_data,
                        device,
                        submitted_vt,
                        started_vt,
                        completed_vt,
                        device_seconds,
                        intervals,
                        output,
                    } = cqe;
                    let entry = pending.lock().expect("pending poisoned").remove(&user_data);
                    let payload: Payload = output.map(|(value, trace)| {
                        (
                            value,
                            OpReport {
                                trace,
                                submitted_vt,
                                started_vt,
                                completed_vt,
                                device_seconds,
                                device,
                                intervals,
                            },
                        )
                    });
                    // Recording happens after the completion already
                    // carries its final instants — observation only,
                    // never on the virtual timeline.
                    if let (Some(buf), Ok((_, report))) = (trace_buf.as_ref(), payload.as_ref()) {
                        let kind = entry.as_ref().map_or("op", |(_, k, _)| *k);
                        let tenant = entry.as_ref().map_or(0, |(_, _, t)| *t);
                        buf.record(report.to_span_for(user_data, kind, tenant));
                    }
                    // A client that dropped its ticket is not an
                    // error; its send just goes nowhere.
                    if let Some((tx, _, _)) = entry {
                        let _ = tx.send(payload);
                    }
                }
                // End of stream: anything still pending was queued
                // when serving stopped and will never execute.
                // Resolve those tickets with a typed error instead of
                // letting their owners hang.
                for (_, (tx, _, _)) in pending.lock().expect("pending poisoned").drain() {
                    cancelled.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Err(StoreError::Cancelled));
                }
            })
        };
        ServeCore {
            engine,
            reactor: RwLock::new(Some(reactor)),
            pending,
            dispatcher: Mutex::new(Some(dispatcher)),
            next_token: AtomicU64::new(0),
            cancelled,
            trace,
            tenants,
        }
    }

    /// Submits one op for `tenant`, registering a ticket channel for
    /// its answer. The tenant's spec becomes the op's scheduling tag
    /// (inert under the serve path's FIFO policy beyond per-tenant
    /// busy attribution) and its span attribution.
    pub(crate) fn submit(
        &self,
        op: StoreOp,
        submit_vt: f64,
        mode: SubmitMode,
        tenant: TenantId,
    ) -> Result<std::sync::mpsc::Receiver<Payload>> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let kind = match &op {
            StoreOp::Get(_) => "get",
            StoreOp::Scan(_) => "scan",
            StoreOp::Append(_) => "append",
        };
        let tag = self
            .tenants
            .get(tenant.index())
            .map_or_else(Default::default, |spec| spec.tag(tenant, submit_vt));
        let (tx, rx) = sync_channel(1);
        self.pending
            .lock()
            .expect("pending poisoned")
            .insert(token, (tx, kind, tenant.index()));
        let unregister = || {
            self.pending
                .lock()
                .expect("pending poisoned")
                .remove(&token);
        };
        let guard = self.reactor.read().expect("reactor lock poisoned");
        let Some(reactor) = guard.as_ref() else {
            unregister();
            return Err(StoreError::QueueClosed);
        };
        let pushed = match mode {
            SubmitMode::Block => reactor.submit_tagged(op, token, submit_vt, tag),
            SubmitMode::Fail => reactor.try_submit_tagged(op, token, submit_vt, tag),
        };
        match pushed {
            Ok(()) => Ok(rx),
            Err(SubmitError::Full) => {
                unregister();
                Err(StoreError::QueueFull)
            }
            Err(SubmitError::Closed) => {
                unregister();
                Err(StoreError::QueueClosed)
            }
        }
    }

    pub(crate) fn engine(&self) -> &Arc<StoreEngine> {
        &self.engine
    }

    pub(crate) fn trace(&self) -> Option<&Arc<TraceBuffer>> {
        self.trace.as_ref()
    }

    pub(crate) fn stats(&self) -> ServerStats {
        let snap = self.reactor_snapshot();
        ServerStats {
            submitted: snap.submitted,
            completed: snap.completed,
            rejected: snap.rejected,
            cancelled: self.cancelled.load(Ordering::Relaxed),
            queued: snap.queued,
        }
    }

    pub(crate) fn reactor_snapshot(&self) -> ReactorSnapshot {
        self.reactor
            .read()
            .expect("reactor lock poisoned")
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_else(|| ReactorSnapshot {
                submitted: 0,
                rejected: 0,
                completed: 0,
                queued: 0,
                device_busy: Vec::new(),
                tenant_busy: Vec::new(),
                tenant_queue_delay: Vec::new(),
                horizon: 0.0,
                utilization: Vec::new(),
            })
    }

    /// Idempotent teardown. Graceful serves everything queued;
    /// otherwise still-queued ops are dropped and their tickets
    /// resolve to [`StoreError::Cancelled`].
    pub(crate) fn stop(&self, graceful: bool) {
        // Phase 1 — close the ring through a *read* guard. A
        // Block-mode submitter stuck on a full ring is parked inside
        // `submit` while holding its own read guard, so reaching for
        // the write lock first would deadlock; closing wakes every
        // blocked submitter (their submissions fail `QueueClosed`)
        // and lets their guards go.
        {
            let guard = self.reactor.read().expect("reactor lock poisoned");
            if let Some(reactor) = guard.as_ref() {
                if graceful {
                    reactor.close();
                } else {
                    // Unserved submissions are dropped here; the
                    // dispatcher resolves their tickets as cancelled.
                    drop(reactor.close_now());
                }
            }
        }
        // Phase 2 — no submitter can block anymore; take the reactor
        // out and join everything (close/close_now are idempotent).
        let reactor = self.reactor.write().expect("reactor lock poisoned").take();
        if let Some(reactor) = reactor {
            if graceful {
                reactor.shutdown();
            } else {
                drop(reactor.abort());
            }
        }
        if let Some(d) = self.dispatcher.lock().expect("dispatcher poisoned").take() {
            let _ = d.join();
        }
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        self.stop(true);
    }
}

/// A served dataset: the encoded chunk store, its query engine, and a
/// running reactor front end. Built by a
/// [`DatasetBuilder`](super::DatasetBuilder); open [`Session`]s on it
/// to submit operations.
///
/// Dropping the dataset (and every session on it) shuts serving down
/// gracefully: queued operations are still executed. Use
/// [`Dataset::abort`] to cancel queued work instead.
#[derive(Debug)]
pub struct Dataset {
    core: Arc<ServeCore>,
}

impl Dataset {
    /// Serves an already-open engine with `workers` reactor threads
    /// over a submission ring of `queue_depth` slots. (The builder is
    /// the usual entry point; this is the escape hatch for engines
    /// configured by hand.)
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] when `workers` or `queue_depth` is 0.
    pub fn serve(engine: Arc<StoreEngine>, workers: usize, queue_depth: usize) -> Result<Dataset> {
        Dataset::serve_traced(engine, workers, queue_depth, false)
    }

    /// [`Dataset::serve`] with span tracing optionally on: every
    /// completed operation is recorded as an
    /// [`OpSpan`](crate::obs::OpSpan) into the dataset's
    /// [`TraceBuffer`] (see [`Dataset::trace`]). Tracing never
    /// perturbs the virtual timeline — a traced run's instants are
    /// bit-identical to an untraced one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] when `workers` or `queue_depth` is 0.
    pub fn serve_traced(
        engine: Arc<StoreEngine>,
        workers: usize,
        queue_depth: usize,
        tracing: bool,
    ) -> Result<Dataset> {
        Dataset::serve_with(engine, workers, queue_depth, tracing, None)
    }

    /// [`Dataset::serve_traced`] with an optional bound on the trace
    /// buffer: `Some(n)` keeps only the most recent `n` spans (a
    /// ring, evicting the oldest and counting each eviction — see
    /// [`TraceBuffer::dropped`]), `None` keeps every span. The ring
    /// bound is observation-side only and never perturbs the
    /// timeline.
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] when `workers` or `queue_depth` is 0,
    /// or when `trace_capacity` is `Some(0)`.
    pub fn serve_with(
        engine: Arc<StoreEngine>,
        workers: usize,
        queue_depth: usize,
        tracing: bool,
        trace_capacity: Option<usize>,
    ) -> Result<Dataset> {
        Dataset::serve_multi(
            engine,
            workers,
            queue_depth,
            tracing,
            trace_capacity,
            Vec::new(),
        )
    }

    /// [`Dataset::serve_with`] with explicit tenants: each registered
    /// [`TenantSpec`] gets a [`TenantId`] in list order, sessions
    /// opened via [`Dataset::session_for`] submit under that tenant's
    /// scheduling tag, and recorded spans carry the tenant. An empty
    /// list serves the single default tenant (identical to
    /// [`Dataset::serve_with`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] for degenerate sizing or an invalid
    /// tenant spec.
    pub fn serve_multi(
        engine: Arc<StoreEngine>,
        workers: usize,
        queue_depth: usize,
        tracing: bool,
        trace_capacity: Option<usize>,
        tenants: Vec<TenantSpec>,
    ) -> Result<Dataset> {
        if workers == 0 {
            return Err(crate::ConfigError::ZeroServerWorkers.into());
        }
        if queue_depth == 0 {
            return Err(crate::ConfigError::ZeroQueueDepth.into());
        }
        if trace_capacity == Some(0) {
            return Err(crate::ConfigError::ZeroTraceCapacity.into());
        }
        let tenants = if tenants.is_empty() {
            vec![TenantSpec::default()]
        } else {
            for spec in &tenants {
                spec.validate()?;
            }
            tenants
        };
        let trace = tracing.then(|| {
            Arc::new(match trace_capacity {
                Some(cap) => TraceBuffer::with_capacity(cap),
                None => TraceBuffer::new(),
            })
        });
        Ok(Dataset {
            core: Arc::new(ServeCore::start(
                engine,
                workers,
                queue_depth,
                trace,
                tenants,
            )),
        })
    }

    /// Opens a session as the default tenant (cheap; any number may
    /// coexist).
    pub fn session(&self) -> Session {
        Session {
            core: Arc::clone(&self.core),
            mode: SubmitMode::Block,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Opens a session submitting as `tenant`: its operations carry
    /// the tenant's scheduling tag and its recorded spans are
    /// attributed to it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] ([`ConfigError::UnknownTenant`](crate::ConfigError::UnknownTenant))
    /// when no tenant is registered under `tenant`.
    pub fn session_for(&self, tenant: TenantId) -> Result<Session> {
        if tenant.index() >= self.core.tenants.len() {
            return Err(crate::ConfigError::UnknownTenant.into());
        }
        Ok(Session {
            core: Arc::clone(&self.core),
            mode: SubmitMode::Block,
            tenant,
        })
    }

    /// The registered tenants, in [`TenantId`] order (never empty —
    /// index 0 is the default tenant).
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.core.tenants
    }

    /// The engine behind the dataset.
    pub fn engine(&self) -> &Arc<StoreEngine> {
        self.core.engine()
    }

    /// Total reads currently stored.
    pub fn total_reads(&self) -> u64 {
        self.core.engine().total_reads()
    }

    /// Serving counters (accepted, completed, shed, cancelled).
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// Decoded-chunk cache counters (aggregated across cache shards).
    pub fn cache_stats(&self) -> CacheSnapshot {
        self.core.engine().cache_stats()
    }

    /// Striped-cache shard occupancy and lock accounting.
    pub fn stripe_snapshot(&self) -> StripeSnapshot {
        self.core.engine().stripe_snapshot()
    }

    /// Aggregated device accounting.
    pub fn timing_snapshot(&self) -> TimingSnapshot {
        self.core.engine().timing_snapshot()
    }

    /// Per-device accounting.
    pub fn device_snapshots(&self) -> Vec<DeviceSnapshot> {
        self.core.engine().device_snapshots()
    }

    /// The reactor's accounting (virtual device busy seconds,
    /// utilization, horizon).
    pub fn reactor_snapshot(&self) -> ReactorSnapshot {
        self.core.reactor_snapshot()
    }

    /// The dataset's span buffer — `None` unless it was built with
    /// [`DatasetBuilder::tracing`](super::DatasetBuilder::tracing)
    /// (or served via [`Dataset::serve_traced`]).
    pub fn trace(&self) -> Option<Arc<TraceBuffer>> {
        self.core.trace().cloned()
    }

    /// One unified snapshot of everything the serving stack counts:
    /// server counters, engine totals, cache outcome and lock
    /// accounting, per-device busy seconds and utilization, and the
    /// trace buffer's size. This subsumes the scattered per-layer
    /// snapshots — each metric is also available as a typed
    /// counter/gauge via
    /// [`MetricsSnapshot::metrics`](crate::obs::MetricsSnapshot::metrics).
    ///
    /// ```
    /// use sage_store::client::DatasetBuilder;
    /// use sage_genomics::sim::{simulate_dataset, DatasetProfile};
    ///
    /// # fn main() -> Result<(), sage_store::StoreError> {
    /// let ds = simulate_dataset(&DatasetProfile::tiny_short(), 3);
    /// let dataset = DatasetBuilder::new().chunk_reads(32).encode(&ds.reads)?;
    /// dataset.session().get(0..8)?.join()?;
    /// let m = dataset.metrics();
    /// assert_eq!(m.requests_served, 1);
    /// assert_eq!(m.cache_misses, 1);  // cold get decoded one chunk
    /// assert!(m.metrics().iter().any(|(name, _)| name == "cache.hit_rate"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        let server = self.stats();
        let cache = self.cache_stats();
        let stripes = self.stripe_snapshot();
        let reactor = self.reactor_snapshot();
        let timing = self.timing_snapshot();
        let engine = self.engine();
        let decode = engine.decode_stats();
        let (trace_spans, trace_dropped) = self.trace().map_or((0, 0), |t| (t.len(), t.dropped()));
        MetricsSnapshot {
            submitted: server.submitted,
            completed: server.completed,
            rejected: server.rejected,
            cancelled: server.cancelled,
            queued: server.queued,
            requests_served: engine.requests_served(),
            bytes_copied: engine.payload_bytes_copied(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_shards: stripes.shards,
            cache_len: stripes.len,
            cache_capacity: stripes.capacity,
            lock_acquisitions: stripes.lock_acquisitions,
            lock_busy_seconds: stripes.lock_busy_seconds,
            device_busy: reactor.device_busy,
            utilization: reactor.utilization,
            horizon: reactor.horizon,
            device_reads: timing.reads,
            device_writes: timing.writes,
            device_read_seconds: timing.read_seconds,
            device_write_seconds: timing.write_seconds,
            chunks_decoded: decode.chunks_decoded,
            bytes_decoded: decode.bytes_decoded,
            decode_seconds: decode.decode_seconds,
            dedup_decodes: decode.dedup_decodes,
            pipeline_occupancy: decode.pipeline_occupancy,
            trace_spans,
            trace_dropped,
        }
    }

    /// Runs the analysis tier over the dataset's recorded spans:
    /// per-op latency blame, the windowed bottleneck timeline, and
    /// run totals (see [`analysis::analyze`](crate::obs::analysis::analyze)).
    /// Returns `None` when the dataset was served without tracing.
    /// Read-only: consumes a copy of the recorded spans and never
    /// touches the timeline.
    pub fn analyze(&self, spec: &crate::obs::analysis::AnalysisSpec) -> Option<BlameReport> {
        let trace = self.trace()?;
        let devices = self.reactor_snapshot().device_busy.len();
        Some(crate::obs::analysis::analyze(&trace.spans(), devices, spec))
    }

    /// Stops serving after the queue drains. Outstanding sessions
    /// then fail submissions with [`StoreError::QueueClosed`].
    pub fn shutdown(self) {
        self.core.stop(true);
    }

    /// Stops immediately: operations still queued are *not* executed —
    /// their tickets resolve to [`StoreError::Cancelled`].
    pub fn abort(self) {
        self.core.stop(false);
    }
}

/// A typed submission handle on a [`Dataset`].
///
/// Each operation returns a ticket typed by its result —
/// [`Session::get`] and [`Session::scan`] yield
/// [`Ticket<ReadView>`](Ticket) (a zero-copy view over the engine's
/// cached chunks), [`Session::append`] a `Ticket<u64>` — so
/// mismatching a request with the wrong response kind cannot compile.
/// Tickets resolve to [`Completion`](super::Completion)s carrying an
/// [`OpReport`]. Views read records in place;
/// [`ReadView::to_owned`] is the explicit opt-in to a per-record
/// copy.
///
/// ```
/// use sage_store::client::{DatasetBuilder, SubmitMode};
/// use sage_genomics::sim::{simulate_dataset, DatasetProfile};
///
/// # fn main() -> Result<(), sage_store::StoreError> {
/// let ds = simulate_dataset(&DatasetProfile::tiny_short(), 9);
/// let dataset = DatasetBuilder::new().chunk_reads(16).encode(&ds.reads)?;
/// let session = dataset.session().with_mode(SubmitMode::Block);
///
/// // Typed tickets: get → ReadView, append → u64. No enum matching.
/// let view = session.get(0..8)?.join()?;
/// assert_eq!(view.len(), 8);
/// let first = session.append(&view.to_owned())?.join()?;
/// assert_eq!(first, ds.reads.len() as u64);
///
/// // Every ticket also carries the operation's report.
/// let warm = session.get(0..8)?.wait()?;
/// assert_eq!(warm.report.cache_misses(), 0); // chunk already decoded
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    core: Arc<ServeCore>,
    mode: SubmitMode,
    tenant: TenantId,
}

impl Session {
    /// Returns this session with a different full-queue behavior.
    pub fn with_mode(mut self, mode: SubmitMode) -> Session {
        self.mode = mode;
        self
    }

    /// The session's full-queue behavior.
    pub fn mode(&self) -> SubmitMode {
        self.mode
    }

    /// The tenant this session submits as (the default tenant unless
    /// opened via [`Dataset::session_for`]).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The spec of the tenant this session submits as.
    pub fn tenant_spec(&self) -> TenantSpec {
        self.core.tenants[self.tenant.index()]
    }

    /// Submits a `Get` for reads `range` (dataset-global ids,
    /// half-open).
    ///
    /// # Errors
    ///
    /// [`StoreError::QueueFull`] (in [`SubmitMode::Fail`]) or
    /// [`StoreError::QueueClosed`]. The operation's own errors arrive
    /// through the ticket.
    pub fn get(&self, range: Range<u64>) -> Result<Ticket<ReadView>> {
        self.get_at(range, 0.0)
    }

    /// [`Session::get`] submitted at virtual instant `submit_vt` —
    /// closed-loop drivers chain a client's next submit to its
    /// previous completion instant.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn get_at(&self, range: Range<u64>, submit_vt: f64) -> Result<Ticket<ReadView>> {
        let rx = self
            .core
            .submit(StoreOp::Get(range), submit_vt, self.mode, self.tenant)?;
        Ok(Ticket::new(rx, extract_reads))
    }

    /// Submits a `Scan` returning every stored read matching
    /// `predicate`.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn scan<F>(&self, predicate: F) -> Result<Ticket<ReadView>>
    where
        F: Fn(&Read) -> bool + Send + 'static,
    {
        self.scan_at(predicate, 0.0)
    }

    /// [`Session::scan`] submitted at virtual instant `submit_vt`.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn scan_at<F>(&self, predicate: F, submit_vt: f64) -> Result<Ticket<ReadView>>
    where
        F: Fn(&Read) -> bool + Send + 'static,
    {
        let rx = self.core.submit(
            StoreOp::Scan(Box::new(predicate)),
            submit_vt,
            self.mode,
            self.tenant,
        )?;
        Ok(Ticket::new(rx, extract_reads))
    }

    /// Submits an `Append`; the ticket resolves to the id of the
    /// first appended read.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn append(&self, reads: &ReadSet) -> Result<Ticket<u64>> {
        self.append_at(reads, 0.0)
    }

    /// [`Session::append`] submitted at virtual instant `submit_vt`.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn append_at(&self, reads: &ReadSet, submit_vt: f64) -> Result<Ticket<u64>> {
        let rx = self.core.submit(
            StoreOp::Append(reads.clone()),
            submit_vt,
            self.mode,
            self.tenant,
        )?;
        Ok(Ticket::new(rx, extract_appended))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DatasetBuilder, SubmitMode};
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};

    fn served(chunk: usize, cache: usize, workers: usize, depth: usize) -> (Dataset, ReadSet) {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 5).reads;
        let dataset = DatasetBuilder::new()
            .chunk_reads(chunk)
            .cache_chunks(cache)
            .server_workers(workers)
            .queue_depth(depth)
            .encode(&reads)
            .expect("build dataset");
        (dataset, reads)
    }

    #[test]
    fn session_answers_all_op_kinds_typed() {
        let (dataset, reads) = served(16, 8, 3, 8);
        let session = dataset.session();
        let got = session.get(0..4).unwrap().wait().unwrap();
        assert_eq!(got.value.len(), 4);
        assert_eq!(got.report.chunks_touched(), 1);
        let all = session.scan(|_| true).unwrap().join().unwrap();
        assert_eq!(all.len(), reads.len());
        let extra = ReadSet::from_reads(reads.reads()[..3].to_vec());
        let first = session.append(&extra).unwrap().join().unwrap();
        assert_eq!(first, reads.len() as u64);
        assert_eq!(dataset.engine().requests_served(), 3);
        let stats = dataset.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.cancelled, 0);
        dataset.shutdown();
    }

    #[test]
    fn reports_carry_cache_outcomes() {
        let (dataset, _) = served(16, 8, 2, 8);
        let session = dataset.session();
        let cold = session.get(0..8).unwrap().wait().unwrap();
        assert_eq!(cold.report.cache_misses(), 1);
        assert_eq!(cold.report.cache_hits(), 0);
        let warm = session.get(0..8).unwrap().wait().unwrap();
        assert_eq!(warm.report.cache_misses(), 0);
        assert_eq!(warm.report.cache_hits(), 1);
        // Untimed engine: no charges either way.
        assert!(cold.report.charges().is_empty());
        assert!(warm.report.latency() >= 0.0);
    }

    #[test]
    fn session_surfaces_request_errors_and_survives() {
        let (dataset, reads) = served(16, 8, 2, 4);
        let n = reads.len() as u64;
        let session = dataset.session();
        assert!(matches!(
            session.get(0..n * 10).unwrap().wait(),
            Err(StoreError::RangeOutOfBounds { .. })
        ));
        // The worker that answered the failing request still serves.
        assert!(session.get(0..1).unwrap().join().is_ok());
    }

    #[test]
    fn fail_mode_sheds_and_counts_rejections() {
        let (dataset, _) = served(16, 8, 1, 1);
        // One worker + depth-1 ring: a scan in flight plus one queued
        // operation saturate the server.
        let blocking = dataset.session();
        let shedding = dataset.session().with_mode(SubmitMode::Fail);
        assert_eq!(shedding.mode(), SubmitMode::Fail);
        let slow = blocking.scan(|_| true).expect("first submit");
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for _ in 0..32 {
            match shedding.get(0..1) {
                Ok(t) => tickets.push(t),
                Err(StoreError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected {other}"),
            }
        }
        assert!(rejected > 0, "ring never filled");
        assert_eq!(dataset.stats().rejected, rejected);
        // Accepted work still completes.
        assert!(slow.wait().is_ok());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn abort_cancels_queued_ops_with_typed_error() {
        let (dataset, _) = served(16, 8, 1, 32);
        let session = dataset.session();
        // A deep backlog behind one worker guarantees queued-but-
        // unserved operations at abort time.
        let tickets: Vec<Ticket<ReadView>> =
            (0..24).map(|_| session.scan(|_| true).unwrap()).collect();
        dataset.abort();
        let mut answered = 0;
        let mut cancelled = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => answered += 1,
                Err(StoreError::Cancelled) => cancelled += 1,
                Err(other) => panic!("unexpected {other}"),
            }
        }
        assert!(cancelled > 0, "abort cancelled nothing");
        assert_eq!(answered + cancelled, 24);
        // The session outlives the dataset handle; submissions now
        // fail typed instead of hanging.
        assert!(matches!(session.get(0..1), Err(StoreError::QueueClosed)));
    }

    #[test]
    fn abort_unblocks_backpressured_submitters() {
        use std::sync::atomic::AtomicBool;
        let (dataset, _) = served(16, 8, 1, 1);
        let session = dataset.session();
        // Stall the only worker inside a scan (sleep once, on the
        // first read) so the ring stays full behind it.
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let slow = session
            .scan(move |_| {
                if !g.swap(true, Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
                true
            })
            .unwrap();
        // Fill the depth-1 ring behind the busy worker…
        let queued = session.get(0..1).unwrap();
        // …and park a Block-mode submitter on the full ring.
        let blocked_session = dataset.session();
        let blocked = std::thread::spawn(move || blocked_session.get(0..2));
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Abort must not deadlock behind the parked submitter (it
        // used to: teardown wanted the write lock while the submitter
        // held a read guard inside the blocking push).
        dataset.abort();
        match blocked.join().expect("submitter thread finishes") {
            Err(StoreError::QueueClosed) => {}
            Ok(t) => {
                // Raced in before the close: it must still resolve.
                assert!(matches!(t.wait(), Ok(_) | Err(StoreError::Cancelled)));
            }
            Err(other) => panic!("unexpected {other}"),
        }
        // The in-flight scan finished; the queued get was cancelled.
        assert!(slow.wait().is_ok());
        assert!(matches!(queued.wait(), Err(StoreError::Cancelled)));
    }

    #[test]
    fn dropped_tickets_do_not_wedge_serving() {
        let (dataset, _) = served(16, 8, 2, 8);
        let session = dataset.session();
        for _ in 0..8 {
            drop(session.get(0..4).unwrap());
        }
        // The abandoned answers were executed and discarded; new work
        // still flows.
        assert!(session.get(0..2).unwrap().join().is_ok());
        dataset.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_the_queue() {
        let (dataset, _) = served(16, 8, 1, 16);
        let session = dataset.session();
        let tickets: Vec<Ticket<ReadView>> = (0..10).map(|_| session.get(0..4).unwrap()).collect();
        dataset.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "graceful shutdown must serve queued work");
        }
    }

    #[test]
    fn panicking_op_does_not_wedge_serving() {
        let (dataset, _) = served(16, 8, 1, 4);
        let session = dataset.session();
        // The panicking predicate kills the only worker mid-execute.
        let t1 = session.scan(|_| panic!("predicate bomb")).unwrap();
        let t2 = session.get(0..1).unwrap();
        // Shutdown must join cleanly and resolve both tickets instead
        // of hanging their owners: the panicked op never completed,
        // and the queued one was never picked up.
        dataset.shutdown();
        assert!(matches!(t1.wait(), Err(StoreError::Cancelled)));
        assert!(matches!(t2.wait(), Err(StoreError::Cancelled)));
    }

    #[test]
    fn serve_rejects_degenerate_sizing() {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 5).reads;
        let store = crate::codec::encode_sharded(&reads, &crate::StoreOptions::new(16)).unwrap();
        let engine = Arc::new(StoreEngine::open(store, Default::default()));
        assert!(matches!(
            Dataset::serve(Arc::clone(&engine), 0, 4),
            Err(StoreError::Config(crate::ConfigError::ZeroServerWorkers))
        ));
        assert!(matches!(
            Dataset::serve(engine, 2, 0),
            Err(StoreError::Config(crate::ConfigError::ZeroQueueDepth))
        ));
    }
}
