//! Shared latency aggregation: one histogram/percentile machinery for
//! every load driver.
//!
//! Both drive reports — the closed loop's
//! [`LoadReport`](super::LoadReport) and the open loop's
//! [`QosReport`](super::workload::QosReport) — aggregate per-operation
//! virtual latencies into the same [`LatencyStats`], a thin view over
//! the observability layer's log-bucketed
//! [`LogHistogram`](crate::obs::LogHistogram): count, mean, and max
//! are exact, percentiles are answered from the histogram's buckets
//! (≈0.78% relative quantization, monotone), and every bench bin
//! prints and asserts on this one implementation.

use crate::obs::LogHistogram;

/// `p` in `[0, 1]` over an ascending-sorted slice (nearest-rank,
/// exact). Kept for call sites that need exact order statistics of a
/// materialized sample; [`LatencyStats`] itself aggregates through
/// the histogram.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Aggregated latency distribution of one drive (all milliseconds).
///
/// Built once from the per-operation virtual latencies by
/// [`LatencyStats::from_sorted_secs`] (or from any
/// [`LogHistogram`] via [`LatencyStats::from_histogram`]); every
/// percentile any bench prints comes out of this one extraction.
/// `count`, `mean_ms`, and `max_ms` are exact; the percentile fields
/// carry the histogram's ≈0.78% bucket quantization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Operations aggregated.
    pub count: u64,
    /// Mean virtual latency, milliseconds.
    pub mean_ms: f64,
    /// Median virtual latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile virtual latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile virtual latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile virtual latency, milliseconds.
    pub p999_ms: f64,
    /// Worst observed virtual latency, milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Aggregates an ascending-sorted slice of per-operation latencies
    /// in **seconds** into millisecond statistics, by recording the
    /// slice into a [`LogHistogram`] in order (so the mean's addition
    /// order — and hence its value — matches summing the slice
    /// directly) and reading the stats back out.
    pub fn from_sorted_secs(sorted: &[f64]) -> LatencyStats {
        let mut hist = LogHistogram::new();
        for &v in sorted {
            hist.record(v);
        }
        LatencyStats::from_histogram(&hist)
    }

    /// The millisecond view over a latency histogram in seconds —
    /// the shared implementation both drive reports resolve through.
    pub fn from_histogram(hist: &LogHistogram) -> LatencyStats {
        if hist.count() == 0 {
            return LatencyStats::default();
        }
        LatencyStats {
            count: hist.count(),
            mean_ms: hist.mean() * 1e3,
            p50_ms: hist.quantile(0.50) * 1e3,
            p95_ms: hist.quantile(0.95) * 1e3,
            p99_ms: hist.quantile(0.99) * 1e3,
            p999_ms: hist.quantile(0.999) * 1e3,
            max_ms: hist.max() * 1e3,
        }
    }

    /// Renders the stats as a JSON object fragment — the bench bins'
    /// shared serialization, so `BENCH_io.json`, `BENCH_qos.json`, and
    /// `BENCH_cache.json` all spell latency identically.
    pub fn json(&self) -> String {
        format!(
            "{{\"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4},\"p999_ms\":{:.4},\"mean_ms\":{:.4},\"max_ms\":{:.4}}}",
            self.p50_ms, self.p95_ms, self.p99_ms, self.p999_ms, self.mean_ms, self.max_ms
        )
    }
}

/// Per-op-kind latency distributions of one drive.
///
/// Each kind aggregates through its own [`LogHistogram`] inside the
/// driver; the run-level [`LatencyStats`] both reports carry is the
/// [`LogHistogram::merge`] fold of these three, so per-kind and total
/// views come from one recording pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyByKind {
    /// Latency distribution of point gets.
    pub gets: LatencyStats,
    /// Latency distribution of range scans.
    pub scans: LatencyStats,
    /// Latency distribution of appends.
    pub appends: LatencyStats,
}

impl LatencyByKind {
    /// Renders the per-kind stats as a JSON object fragment.
    pub fn json(&self) -> String {
        format!(
            "{{\"gets\":{},\"scans\":{},\"appends\":{}}}",
            self.gets.json(),
            self.scans.json(),
            self.appends.json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_extract_from_sorted_slice() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0); // nearest rank
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn stats_aggregate_in_milliseconds() {
        let secs: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let s = LatencyStats::from_sorted_secs(&secs);
        assert_eq!(s.count, 1000);
        // Mean and max are exact; percentiles carry the histogram's
        // ≈0.78% bucket quantization.
        assert!((s.mean_ms - 500.5).abs() < 1e-9);
        assert!((s.p50_ms - 500.5).abs() < 500.5 * 0.01);
        assert!((s.p99_ms - 990.0).abs() < 990.0 * 0.01);
        assert!((s.p999_ms - 999.0).abs() < 999.0 * 0.01);
        assert_eq!(s.max_ms, 1000.0);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.p999_ms);
    }

    #[test]
    fn histogram_and_sorted_paths_agree() {
        let secs: Vec<f64> = (1..=257).map(|i| i as f64 * 7e-4).collect();
        let mut hist = LogHistogram::new();
        for &v in &secs {
            hist.record(v);
        }
        assert_eq!(
            LatencyStats::from_sorted_secs(&secs),
            LatencyStats::from_histogram(&hist)
        );
    }

    #[test]
    fn empty_input_is_all_zero() {
        assert_eq!(LatencyStats::from_sorted_secs(&[]), LatencyStats::default());
    }

    #[test]
    fn per_kind_fold_matches_single_histogram() {
        // Recording per kind then merging equals recording everything
        // into one histogram: quantiles, count, min, max all agree.
        let gets: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-3).collect();
        let scans: Vec<f64> = (1..=50).map(|i| i as f64 * 5e-3).collect();
        let mut h_get = LogHistogram::new();
        let mut h_scan = LogHistogram::new();
        let mut all = LogHistogram::new();
        for &v in &gets {
            h_get.record(v);
            all.record(v);
        }
        for &v in &scans {
            h_scan.record(v);
            all.record(v);
        }
        let mut folded = h_get.clone();
        folded.merge(&h_scan);
        let a = LatencyStats::from_histogram(&folded);
        let b = LatencyStats::from_histogram(&all);
        assert_eq!(a.count, b.count);
        assert_eq!(a.p50_ms, b.p50_ms);
        assert_eq!(a.p99_ms, b.p99_ms);
        assert_eq!(a.max_ms, b.max_ms);
        let by_kind = LatencyByKind {
            gets: LatencyStats::from_histogram(&h_get),
            scans: LatencyStats::from_histogram(&h_scan),
            appends: LatencyStats::default(),
        };
        let j = by_kind.json();
        for key in ["\"gets\"", "\"scans\"", "\"appends\""] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }

    #[test]
    fn json_fragment_parses_shape() {
        let s = LatencyStats::from_sorted_secs(&[1e-3, 2e-3]);
        let j = s.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in ["p50_ms", "p95_ms", "p99_ms", "p999_ms", "mean_ms", "max_ms"] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }
}
