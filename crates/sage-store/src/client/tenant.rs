//! Multi-tenant QoS: tenant identities, per-tenant service specs, and
//! the multi-tenant open-loop driver.
//!
//! A [`TenantSpec`] declares how one tenant's operations are treated
//! by the serving stack: its scheduling `priority` (strict-priority
//! policy), fair-share `weight` (weighted-fair policy), per-op
//! deadline derived from its `slo` (deadline policy), and an
//! `admission` occupancy cap that sheds the tenant's arrivals *before*
//! they queue. Tenants are registered on the
//! [`DatasetBuilder`](super::DatasetBuilder) in order; their index is
//! their [`TenantId`], and tenant 0 is the default every untagged
//! submission is attributed to.
//!
//! [`Dataset::drive_tenants`] is the measurement harness: each tenant
//! offers an independent seeded open-loop stream ([`TenantLoad`]), the
//! streams are merged on the virtual timeline by arrival instant, and
//! the device scheduler orders the pending work by the configured
//! [`SchedPolicyKind`]. With one worker the whole drive is
//! bit-deterministic, and with a single default tenant under the
//! `Fifo` policy it reproduces [`Dataset::drive_open_loop`]'s
//! [`QosReport`] exactly (property-tested in `tests/prop_qos.rs`).

use super::stats::{LatencyByKind, LatencyStats};
use super::workload::{
    Arrivals, OpKind, OpKindStats, OpMix, OpStream, Pattern, QosReport, ShedEvent, WorkloadRng,
    ARRIVAL_STREAM, OP_STREAM, SHED_STREAM,
};
use super::Dataset;
use crate::engine::{EngineBackend, OpValue};
use crate::obs::LogHistogram;
use crate::{ConfigError, Result};
use sage_genomics::ReadSet;
use sage_io::{IoConfig, Reactor, SchedPolicyKind, SchedTag};
use std::sync::Arc;

/// A tenant's identity on a dataset: its registration index.
///
/// Tenants are registered on the builder
/// ([`DatasetBuilder::tenant`](super::DatasetBuilder::tenant)) or
/// listed in a [`MultiTenantSpec`]; the first registered tenant is
/// `TenantId(0)`, which is also the default tenant every untagged
/// submission belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub usize);

impl TenantId {
    /// The default tenant (index 0).
    pub const DEFAULT: TenantId = TenantId(0);

    /// The tenant's registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How the serving stack treats one tenant's operations.
///
/// Each field feeds a different scheduling policy, so one spec
/// describes the tenant under every policy the sweep compares:
///
/// | field       | consumed by                        |
/// |-------------|------------------------------------|
/// | `priority`  | [`SchedPolicyKind::StrictPriority`] |
/// | `weight`    | [`SchedPolicyKind::WeightedFair`]  |
/// | `slo`       | [`SchedPolicyKind::Deadline`] (per-op deadline = submit + slo) |
/// | `admission` | the open-loop drivers' admission control |
///
/// ```
/// use sage_store::client::TenantSpec;
///
/// // A latency-sensitive foreground tenant: high priority, 4× the
/// // fair share, a 50 ms SLO, and no extra admission cap.
/// let fg = TenantSpec::named("frontend")
///     .with_priority(200)
///     .with_weight(4.0)
///     .with_slo(0.050);
/// assert_eq!(fg.priority, 200);
/// assert_eq!(fg.slo, Some(0.050));
///
/// // A best-effort scan tenant shed once 8 of its ops are in flight.
/// let bg = TenantSpec::named("batch").with_admission(8);
/// assert_eq!(bg.admission, Some(8));
/// assert!(fg.validate().is_ok() && bg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Display label for sweep tables and bench JSON.
    pub name: &'static str,
    /// Strict-priority rank: higher is served first (255 is the
    /// highest).
    pub priority: u8,
    /// Weighted-fair share of device time relative to other tenants.
    pub weight: f64,
    /// Latency objective in virtual seconds; under the deadline
    /// policy each op's deadline is its submit instant plus this.
    /// `None` means no deadline (served after every deadlined op).
    pub slo: Option<f64>,
    /// Admission cap: an arrival of this tenant that finds at least
    /// this many operations occupying the virtual queue is shed, even
    /// when the global queue bound still has room. `None` applies
    /// only the global bound.
    pub admission: Option<usize>,
}

impl Default for TenantSpec {
    fn default() -> TenantSpec {
        TenantSpec {
            name: "default",
            priority: 0,
            weight: 1.0,
            slo: None,
            admission: None,
        }
    }
}

impl TenantSpec {
    /// The default spec (priority 0, weight 1, no SLO, no admission
    /// cap) under `name`.
    pub fn named(name: &'static str) -> TenantSpec {
        TenantSpec {
            name,
            ..TenantSpec::default()
        }
    }

    /// Returns the spec with a strict-priority rank.
    pub fn with_priority(mut self, priority: u8) -> TenantSpec {
        self.priority = priority;
        self
    }

    /// Returns the spec with a weighted-fair share.
    pub fn with_weight(mut self, weight: f64) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Returns the spec with a latency SLO (virtual seconds).
    pub fn with_slo(mut self, slo: f64) -> TenantSpec {
        self.slo = Some(slo);
        self
    }

    /// Returns the spec with an admission occupancy cap.
    pub fn with_admission(mut self, cap: usize) -> TenantSpec {
        self.admission = Some(cap);
        self
    }

    /// The scheduling tag for one operation of this tenant, submitted
    /// at `submit_vt`.
    pub fn tag(&self, tenant: TenantId, submit_vt: f64) -> SchedTag {
        SchedTag {
            tenant: tenant.index(),
            priority: self.priority,
            weight: self.weight,
            deadline_vt: self.slo.map_or(f64::INFINITY, |s| submit_vt + s),
        }
    }

    /// Checks the spec's knobs.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadTenant`] when the weight or SLO is not a
    /// positive finite number, or the admission cap is zero.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(ConfigError::BadTenant);
        }
        if let Some(slo) = self.slo {
            if !(slo.is_finite() && slo > 0.0) {
                return Err(ConfigError::BadTenant);
            }
        }
        if self.admission == Some(0) {
            return Err(ConfigError::BadTenant);
        }
        Ok(())
    }
}

/// One tenant's offered open-loop load in a multi-tenant drive: its
/// own arrival process, access pattern, op mix, request count, and
/// seed — the same vocabulary as
/// [`OpenLoopSpec`](super::workload::OpenLoopSpec), minus the shared
/// serving knobs the [`MultiTenantSpec`] carries once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLoad {
    /// The arrival process injecting this tenant's requests.
    pub arrivals: Arrivals,
    /// The access pattern generating its read ranges.
    pub pattern: Pattern,
    /// Its operation-kind weights.
    pub mix: OpMix,
    /// Arrivals to generate for this tenant (sheds included).
    pub requests: u64,
    /// Seed deriving this tenant's arrival and op streams.
    pub seed: u64,
}

impl TenantLoad {
    /// A load with the open-loop defaults: uniform 16-read gets, 256
    /// requests, seed `0x5a6e`.
    pub fn new(arrivals: Arrivals) -> TenantLoad {
        TenantLoad {
            arrivals,
            pattern: Pattern::Uniform { span: 16 },
            mix: OpMix::gets(),
            requests: 256,
            seed: 0x5a6e,
        }
    }

    /// Checks the load's generators.
    ///
    /// # Errors
    ///
    /// The first failing knob's [`ConfigError`].
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        self.arrivals.validate()?;
        self.pattern.validate()?;
        self.mix.validate()
    }
}

/// Sizing of one multi-tenant open-loop drive: the scheduling policy
/// under test, the shared serving knobs, and one `(TenantSpec,
/// TenantLoad)` pair per tenant (registration order is
/// [`TenantId`] order).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantSpec {
    /// Device scheduling policy ordering the pending work.
    pub policy: SchedPolicyKind,
    /// Global virtual queue bound (per-tenant `admission` caps
    /// tighten it per tenant).
    pub queue_depth: usize,
    /// Reactor worker threads; 1 keeps the drive bit-deterministic.
    pub workers: usize,
    /// The tenants, in [`TenantId`] order.
    pub tenants: Vec<(TenantSpec, TenantLoad)>,
}

impl MultiTenantSpec {
    /// A spec under `policy` with a 64-deep queue, one worker, and no
    /// tenants yet (add them with [`MultiTenantSpec::tenant`]).
    pub fn new(policy: SchedPolicyKind) -> MultiTenantSpec {
        MultiTenantSpec {
            policy,
            queue_depth: 64,
            workers: 1,
            tenants: Vec::new(),
        }
    }

    /// Appends one tenant; its [`TenantId`] is its position.
    pub fn tenant(mut self, spec: TenantSpec, load: TenantLoad) -> MultiTenantSpec {
        self.tenants.push((spec, load));
        self
    }

    /// Checks every knob.
    ///
    /// # Errors
    ///
    /// The first failing knob's [`ConfigError`];
    /// [`ConfigError::BadTenant`] when no tenants are configured.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroServerWorkers);
        }
        if self.tenants.is_empty() {
            return Err(ConfigError::BadTenant);
        }
        for (spec, load) in &self.tenants {
            spec.validate()?;
            load.validate()?;
        }
        Ok(())
    }
}

/// What a multi-tenant drive measured: one full [`QosReport`] per
/// tenant plus the run-level scheduler accounting the conservation
/// property is asserted on.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiQosReport {
    /// The scheduling policy the drive ran under.
    pub policy: SchedPolicyKind,
    /// Per-tenant reports, in [`TenantId`] order. Each tenant's
    /// `device_busy` is its *own* attributed service seconds
    /// (`tenant_busy` row), its rates and utilization are over its
    /// own makespan.
    pub tenants: Vec<QosReport>,
    /// Busy seconds per tenant per device, from the scheduler's
    /// accounting — the per-device fold across rows equals
    /// `device_busy` bit-for-bit.
    pub tenant_busy: Vec<Vec<f64>>,
    /// Virtual seconds each tenant's charges spent queued before
    /// service.
    pub tenant_queue_delay: Vec<f64>,
    /// Busy seconds per device across all tenants.
    pub device_busy: Vec<f64>,
    /// The run's virtual makespan (latest completion of any tenant).
    pub makespan: f64,
}

impl MultiQosReport {
    /// One tenant's report.
    pub fn tenant(&self, id: TenantId) -> &QosReport {
        &self.tenants[id.index()]
    }

    /// Shed arrivals per tenant, in [`TenantId`] order.
    pub fn shed_by_tenant(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.shed).collect()
    }
}

/// One tenant's live generator state during a drive.
struct TenantStream {
    arrivals: Box<dyn super::workload::ArrivalProcess>,
    arrival_rng: WorkloadRng,
    ops: OpStream,
    shed_rng: WorkloadRng,
    /// Next arrival instant (valid while `remaining > 0`).
    next_at: f64,
    /// Arrivals left to generate.
    remaining: u64,
    /// Instant of the last generated arrival (the tenant's offered
    /// span).
    last_at: f64,
    shed_events: Vec<ShedEvent>,
}

impl Dataset {
    /// Drives several tenants' open-loop streams against one reactor
    /// under a chosen scheduling policy, merged on the virtual
    /// timeline by arrival instant (ties go to the lower
    /// [`TenantId`]).
    ///
    /// Unlike [`Dataset::drive_open_loop`] — which serializes
    /// execution in lockstep — admitted operations here *queue* at
    /// the device scheduler, and the policy decides service order: a
    /// high-priority arrival can start before an earlier-submitted
    /// low-priority one. Admission control runs per arrival: an
    /// arrival that finds the virtual queue holding at least
    /// `min(queue_depth, its tenant's admission cap)` incomplete
    /// operations is shed with tenant attribution.
    ///
    /// With `workers == 1` the drive is bit-deterministic, and with a
    /// single default tenant under [`SchedPolicyKind::Fifo`] it
    /// reproduces [`Dataset::drive_open_loop`]'s report exactly.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::Config`] for an invalid spec; otherwise
    /// the first operation error in admission order.
    pub fn drive_tenants(&self, spec: &MultiTenantSpec) -> Result<MultiQosReport> {
        spec.validate().map_err(crate::StoreError::Config)?;
        let engine = Arc::clone(self.engine());
        let total = engine.total_reads();
        let devices = engine.n_devices().max(1);
        let n_tenants = spec.tenants.len();

        // Append templates are sampled before the drive's clock
        // starts, exactly as the single-tenant driver does.
        let mut streams: Vec<TenantStream> = Vec::with_capacity(n_tenants);
        for (_, load) in &spec.tenants {
            let template = if load.mix.append > 0.0 && total > 0 {
                engine.get(0..total.min(4))?
            } else {
                ReadSet::new()
            };
            let mut arrivals = load.arrivals.process();
            let mut arrival_rng = WorkloadRng::new(load.seed ^ ARRIVAL_STREAM);
            let first = if load.requests > 0 {
                arrivals.next_interarrival(&mut arrival_rng).max(0.0)
            } else {
                0.0
            };
            streams.push(TenantStream {
                arrivals,
                arrival_rng,
                ops: OpStream::new(
                    &load.pattern,
                    load.mix,
                    load.seed ^ OP_STREAM,
                    total,
                    template,
                ),
                shed_rng: WorkloadRng::new(load.seed ^ SHED_STREAM),
                next_at: first,
                remaining: load.requests,
                last_at: 0.0,
                shed_events: Vec::new(),
            });
        }

        let trace_buf = self.trace();
        let reactor = Reactor::start(
            Arc::new(EngineBackend::new(engine)),
            IoConfig {
                workers: spec.workers,
                queue_depth: spec.queue_depth,
                devices,
                record_intervals: trace_buf.is_some(),
                policy: spec.policy,
            },
        );
        let cq = reactor.completions();

        // Completion instants of *resolved* admitted ops; entries ≤
        // the current arrival instant have drained from the virtual
        // queue. Ops still pending at the scheduler necessarily
        // complete after the arrival frontier, so they always count
        // toward occupancy.
        let mut inflight: Vec<f64> = Vec::with_capacity(spec.queue_depth);
        let mut admitted = 0u64;
        let mut polled = 0u64;
        // Tenant and kind per admission token, for end-of-run
        // accounting.
        let mut token_meta: Vec<(usize, OpKind)> = Vec::new();
        let mut done: Vec<sage_io::Cqe<<EngineBackend as sage_io::IoBackend>::Output>> = Vec::new();

        // Merge arrivals across tenants: serve the earliest pending
        // instant each round; ties go to the lower tenant id.
        while let Some(t) = (0..n_tenants)
            .filter(|&t| streams[t].remaining > 0)
            .min_by(|&a, &b| {
                streams[a]
                    .next_at
                    .partial_cmp(&streams[b].next_at)
                    .expect("finite arrival instants")
            })
        {
            let at = streams[t].next_at;
            streams[t].last_at = at;
            streams[t].remaining -= 1;
            if streams[t].remaining > 0 {
                let gap = {
                    let s = &mut streams[t];
                    s.arrivals.next_interarrival(&mut s.arrival_rng).max(0.0)
                };
                streams[t].next_at = at + gap;
            }

            // Resolve the timeline up to this arrival and harvest
            // whatever completed, so occupancy is exact.
            reactor.quiesce();
            reactor.advance_to(at);
            while let Some(cqe) = cq.poll_any() {
                inflight.push(cqe.completed_vt);
                polled += 1;
                done.push(cqe);
            }
            inflight.retain(|done_at| *done_at > at);
            let unresolved = (admitted - polled) as usize;
            let tenant_spec = &spec.tenants[t].0;
            let cap = spec
                .queue_depth
                .min(tenant_spec.admission.unwrap_or(usize::MAX));
            if unresolved + inflight.len() >= cap {
                let s = &mut streams[t];
                let kind = spec.tenants[t].1.mix.pick(&mut s.shed_rng);
                s.shed_events.push(ShedEvent {
                    kind,
                    arrival_vt: at,
                    tenant: t,
                });
                continue;
            }
            let tag = tenant_spec.tag(TenantId(t), at);
            let (op, kind) = streams[t].ops.next_op();
            token_meta.push((t, kind));
            reactor
                .submit_tagged(op, admitted, at, tag)
                .expect("live reactor");
            admitted += 1;
        }

        // Flush the tail: everything admitted resolves below an
        // infinite frontier, so the drain below cannot block.
        reactor.quiesce();
        reactor.advance_to(f64::INFINITY);
        while let Some(cqe) = cq.poll_any() {
            done.push(cqe);
        }
        debug_assert_eq!(done.len() as u64, admitted, "flushed drive drains fully");
        let snap = reactor.snapshot();
        reactor.shutdown();

        // Account in admission order — the order the single-tenant
        // driver observes completions in — so per-tenant histogram
        // folds are bit-identical to a lone tenant's lockstep drive.
        done.sort_by_key(|c| c.user_data);
        let mut acc: Vec<TenantAccounting> =
            (0..n_tenants).map(|_| TenantAccounting::new()).collect();
        for cqe in done {
            let (t, kind) = token_meta[cqe.user_data as usize];
            let latency = cqe.latency();
            let (submitted_vt, started_vt, completed_vt) =
                (cqe.submitted_vt, cqe.started_vt, cqe.completed_vt);
            let (device, device_seconds, intervals) =
                (cqe.device, cqe.device_seconds, cqe.intervals);
            let (value, trace) = cqe.output?;
            if let Some(buf) = &trace_buf {
                buf.record(crate::obs::OpSpan {
                    token: cqe.user_data,
                    tenant: t,
                    kind: kind.label(),
                    submitted_vt,
                    started_vt,
                    completed_vt,
                    device,
                    device_seconds,
                    intervals,
                    chunks_touched: trace.chunks_touched,
                    cache_hits: trace.cache_hits,
                    cache_misses: trace.cache_misses,
                    device_ops: trace.device_ops,
                    events: trace.events.clone(),
                });
            }
            let a = &mut acc[t];
            match kind {
                OpKind::Get => a.gets.record(&trace),
                OpKind::Scan => a.scans.record(&trace),
                OpKind::Append => a.appends.record(&trace),
            }
            a.hists[kind as usize].record(latency);
            if let (OpKind::Get, OpValue::Reads(rs)) = (kind, &value) {
                a.reads_served += rs.len() as u64;
                a.bases_served += rs.total_bases() as u64;
            }
            a.latencies.push(latency);
            a.makespan = a.makespan.max(completed_vt);
        }

        // Scheduler rows exist only for tenants that dispatched; pad
        // so every registered tenant has a row.
        let mut tenant_busy = snap.tenant_busy.clone();
        tenant_busy.resize(n_tenants, vec![0.0; devices]);
        let mut tenant_queue_delay = snap.tenant_queue_delay.clone();
        tenant_queue_delay.resize(n_tenants, 0.0);

        let mut tenants_out = Vec::with_capacity(n_tenants);
        let mut run_makespan = 0.0f64;
        for (t, a) in acc.into_iter().enumerate() {
            run_makespan = run_makespan.max(a.makespan);
            let s = &streams[t];
            let load = &spec.tenants[t].1;
            tenants_out.push(a.into_report(
                load,
                s.last_at,
                s.shed_events.clone(),
                tenant_busy[t].clone(),
            ));
        }
        Ok(MultiQosReport {
            policy: spec.policy,
            tenants: tenants_out,
            tenant_busy,
            tenant_queue_delay,
            device_busy: snap.device_busy,
            makespan: run_makespan,
        })
    }
}

/// Per-tenant accumulators of one drive, folded into a [`QosReport`]
/// at the end.
struct TenantAccounting {
    latencies: Vec<f64>,
    hists: [LogHistogram; 3],
    gets: OpKindStats,
    scans: OpKindStats,
    appends: OpKindStats,
    reads_served: u64,
    bases_served: u64,
    makespan: f64,
}

impl TenantAccounting {
    fn new() -> TenantAccounting {
        TenantAccounting {
            latencies: Vec::new(),
            hists: [
                LogHistogram::new(),
                LogHistogram::new(),
                LogHistogram::new(),
            ],
            gets: OpKindStats::default(),
            scans: OpKindStats::default(),
            appends: OpKindStats::default(),
            reads_served: 0,
            bases_served: 0,
            makespan: 0.0,
        }
    }

    fn into_report(
        mut self,
        load: &TenantLoad,
        last_at: f64,
        shed_events: Vec<ShedEvent>,
        device_busy: Vec<f64>,
    ) -> QosReport {
        self.latencies
            .sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let completed = self.latencies.len() as u64;
        let shed = shed_events.len() as u64;
        let latency_by_kind = LatencyByKind {
            gets: LatencyStats::from_histogram(&self.hists[0]),
            scans: LatencyStats::from_histogram(&self.hists[1]),
            appends: LatencyStats::from_histogram(&self.hists[2]),
        };
        let mut total_hist = self.hists[0].clone();
        total_hist.merge(&self.hists[1]);
        total_hist.merge(&self.hists[2]);
        let utilization = if self.makespan > 0.0 {
            device_busy.iter().map(|b| b / self.makespan).collect()
        } else {
            vec![0.0; device_busy.len()]
        };
        QosReport {
            offered: load.requests,
            completed,
            shed,
            shed_events,
            offered_rate: if last_at > 0.0 {
                load.requests as f64 / last_at
            } else {
                load.arrivals.mean_rate()
            },
            achieved_rate: if self.makespan > 0.0 {
                completed as f64 / self.makespan
            } else {
                0.0
            },
            makespan: self.makespan,
            latency: LatencyStats::from_histogram(&total_hist),
            latency_by_kind,
            latencies: self.latencies,
            device_busy,
            utilization,
            gets: self.gets,
            scans: self.scans,
            appends: self.appends,
            reads_served: self.reads_served,
            bases_served: self.bases_served,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DatasetBuilder;
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};
    use sage_ssd::SsdConfig;

    fn fleet_dataset(devices: usize) -> Dataset {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 77).reads;
        DatasetBuilder::new()
            .chunk_reads(16)
            .cache_chunks(0)
            .ssd_fleet((0..devices).map(|_| SsdConfig::pcie()).collect())
            .encode(&reads)
            .expect("build")
    }

    #[test]
    fn tenant_spec_validation_is_typed() {
        assert!(TenantSpec::default().validate().is_ok());
        assert_eq!(
            TenantSpec::default().with_weight(0.0).validate(),
            Err(ConfigError::BadTenant)
        );
        assert_eq!(
            TenantSpec::default().with_weight(f64::NAN).validate(),
            Err(ConfigError::BadTenant)
        );
        assert_eq!(
            TenantSpec::default().with_slo(-1.0).validate(),
            Err(ConfigError::BadTenant)
        );
        assert_eq!(
            TenantSpec::default().with_admission(0).validate(),
            Err(ConfigError::BadTenant)
        );
        let empty = MultiTenantSpec::new(SchedPolicyKind::Fifo);
        assert_eq!(empty.validate(), Err(ConfigError::BadTenant));
    }

    #[test]
    fn tag_derives_deadline_from_slo() {
        let spec = TenantSpec::named("fg").with_priority(9).with_slo(0.25);
        let tag = spec.tag(TenantId(3), 1.0);
        assert_eq!(tag.tenant, 3);
        assert_eq!(tag.priority, 9);
        assert_eq!(tag.deadline_vt, 1.25);
        let open = TenantSpec::default().tag(TenantId::DEFAULT, 1.0);
        assert_eq!(open.deadline_vt, f64::INFINITY);
    }

    #[test]
    fn multi_tenant_drive_reports_per_tenant() {
        let dataset = fleet_dataset(2);
        let mut fg = TenantLoad::new(Arrivals::Poisson { rate: 120.0 });
        fg.requests = 48;
        fg.seed = 0x11;
        let mut bg = TenantLoad::new(Arrivals::Poisson { rate: 60.0 });
        bg.requests = 24;
        bg.seed = 0x22;
        let spec = MultiTenantSpec::new(SchedPolicyKind::WeightedFair)
            .tenant(TenantSpec::named("fg").with_weight(4.0), fg)
            .tenant(TenantSpec::named("bg"), bg);
        let report = dataset.drive_tenants(&spec).expect("drive");
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenant_busy.len(), 2);
        assert_eq!(report.tenant_queue_delay.len(), 2);
        let fg_r = report.tenant(TenantId(0));
        let bg_r = report.tenant(TenantId(1));
        assert_eq!(fg_r.completed + fg_r.shed, 48);
        assert_eq!(bg_r.completed + bg_r.shed, 24);
        assert!(fg_r.latency.p99_ms >= fg_r.latency.p50_ms);
        // Conservation: per-device fold of tenant rows equals the
        // run's device busy bit-for-bit.
        for d in 0..2 {
            let fold = report
                .tenant_busy
                .iter()
                .fold(0.0f64, |acc, row| acc + row[d]);
            assert_eq!(fold.to_bits(), report.device_busy[d].to_bits());
        }
        assert!(report.makespan >= fg_r.makespan.max(bg_r.makespan));
    }

    #[test]
    fn same_spec_same_seeds_reproduce_the_multi_report() {
        let run = |policy| {
            let dataset = fleet_dataset(2);
            let mut fg = TenantLoad::new(Arrivals::Bursty {
                on_rate: 2000.0,
                mean_on: 0.01,
                mean_off: 0.01,
            });
            fg.requests = 40;
            fg.seed = 0xfeed;
            let mut bg = TenantLoad::new(Arrivals::Poisson { rate: 400.0 });
            bg.requests = 40;
            bg.seed = 0xbeef;
            let spec = MultiTenantSpec::new(policy)
                .tenant(TenantSpec::named("fg").with_priority(200), fg)
                .tenant(TenantSpec::named("bg").with_admission(8), bg);
            dataset.drive_tenants(&spec).expect("drive")
        };
        for policy in SchedPolicyKind::ALL {
            let a = run(policy);
            let b = run(policy);
            assert_eq!(a, b, "policy {policy:?} must be bit-deterministic");
            assert!(a.tenants[0].completed > 0);
        }
    }

    #[test]
    fn admission_cap_sheds_the_capped_tenant_first() {
        // Saturate one device; the capped background tenant must shed
        // while the uncapped foreground tenant sheds only at the
        // global bound.
        let dataset = fleet_dataset(1);
        let mut fg = TenantLoad::new(Arrivals::Fixed { rate: 500.0 });
        fg.requests = 64;
        fg.seed = 0x1;
        let mut bg = TenantLoad::new(Arrivals::Fixed { rate: 50_000.0 });
        bg.requests = 256;
        bg.seed = 0x2;
        let mut spec = MultiTenantSpec::new(SchedPolicyKind::Fifo)
            .tenant(TenantSpec::named("fg"), fg)
            .tenant(TenantSpec::named("bg").with_admission(4), bg);
        spec.queue_depth = 64;
        let report = dataset.drive_tenants(&spec).expect("drive");
        let sheds = report.shed_by_tenant();
        assert!(sheds[1] > 0, "capped tenant must shed under overload");
        assert!(
            sheds[1] > sheds[0],
            "admission cap sheds bg before fg: {sheds:?}"
        );
        // Every shed event carries its tenant.
        assert!(report.tenants[1].shed_events.iter().all(|e| e.tenant == 1));
        assert_eq!(report.tenants[1].shed_events.len() as u64, sheds[1]);
    }
}
