//! [`DatasetBuilder`]: one validated entry point folding the codec
//! ([`StoreOptions`]), engine ([`EngineConfig`]), and serving knobs.

use super::tenant::TenantSpec;
use super::Dataset;
use crate::codec::{encode_sharded, ShardedStore, StoreOptions};
use crate::engine::{EngineConfig, StoreBackend, StoreEngine};
use crate::lru::CachePolicy;
use crate::{ConfigError, Result};
use sage_core::CompressOptions;
use sage_genomics::ReadSet;
use sage_io::Placement;
use sage_ssd::SsdConfig;
use std::sync::Arc;

/// The one fluent entry point onto the serving path.
///
/// Folds what used to be three hand-wired configurations —
/// [`StoreOptions`] (chunking + codec), [`EngineConfig`] (cache +
/// devices), and the server sizing passed to the old
/// `StoreServer::start` — into a single builder that **validates knob
/// conflicts** instead of letting the last write win: configuring
/// both [`ssd`](DatasetBuilder::ssd) and
/// [`ssd_fleet`](DatasetBuilder::ssd_fleet) is a typed
/// [`ConfigError::DeviceConflict`], a placement without a fleet is
/// [`ConfigError::PlacementWithoutFleet`], and degenerate sizings are
/// caught before any thread starts.
///
/// ```
/// use sage_store::client::DatasetBuilder;
/// use sage_store::CachePolicy;
/// use sage_ssd::SsdConfig;
/// use sage_genomics::sim::{simulate_dataset, DatasetProfile};
///
/// # fn main() -> Result<(), sage_store::StoreError> {
/// let ds = simulate_dataset(&DatasetProfile::tiny_short(), 7);
/// let dataset = DatasetBuilder::new()
///     .chunk_reads(32)                          // codec knob
///     .cache_chunks(8)                          // engine knob
///     .cache_policy(CachePolicy::Clock)         // engine knob
///     .ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::pcie()])
///     .server_workers(2)                        // serving knob
///     .queue_depth(8)                           // serving knob
///     .encode(&ds.reads)?;
/// assert_eq!(dataset.total_reads(), ds.reads.len() as u64);
/// # Ok(())
/// # }
/// ```
///
/// Conflicting device knobs fail typed, not silently:
///
/// ```
/// use sage_store::client::DatasetBuilder;
/// use sage_store::{ConfigError, StoreError};
/// use sage_ssd::SsdConfig;
/// use sage_genomics::ReadSet;
///
/// let err = DatasetBuilder::new()
///     .ssd(SsdConfig::pcie())
///     .ssd_fleet(vec![SsdConfig::pcie()])
///     .encode(&ReadSet::new())
///     .unwrap_err();
/// assert!(matches!(err, StoreError::Config(ConfigError::DeviceConflict)));
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    reads_per_chunk: usize,
    encode_workers: usize,
    append_workers: usize,
    codec: CompressOptions,
    cache_chunks: usize,
    cache_policy: CachePolicy,
    cache_shards: usize,
    coalesce_extents: bool,
    ssd: Option<SsdConfig>,
    fleet: Option<Vec<SsdConfig>>,
    placement: Option<Placement>,
    server_workers: usize,
    queue_depth: usize,
    tracing: bool,
    tracing_capacity: Option<usize>,
    tenants: Vec<TenantSpec>,
    backend: StoreBackend,
    decode_workers: usize,
    pipeline_depth: usize,
}

impl Default for DatasetBuilder {
    fn default() -> DatasetBuilder {
        DatasetBuilder {
            reads_per_chunk: 256,
            encode_workers: 0,
            append_workers: 0,
            codec: CompressOptions::default(),
            cache_chunks: 16,
            cache_policy: CachePolicy::default(),
            cache_shards: 1,
            coalesce_extents: false,
            ssd: None,
            fleet: None,
            placement: None,
            server_workers: 4,
            queue_depth: 32,
            tracing: false,
            tracing_capacity: None,
            tenants: Vec::new(),
            backend: StoreBackend::default(),
            decode_workers: 0,
            pipeline_depth: 0,
        }
    }
}

impl DatasetBuilder {
    /// A builder with the defaults: 256-read chunks, a 16-chunk LRU
    /// cache, no device timing, 4 serving workers over a 32-deep
    /// ring.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder::default()
    }

    /// Reads per chunk — the random-access granularity (the final
    /// chunk may hold fewer).
    pub fn chunk_reads(mut self, n: usize) -> DatasetBuilder {
        self.reads_per_chunk = n;
        self
    }

    /// Worker threads for the initial encode (0 ⇒ available
    /// parallelism).
    pub fn encode_workers(mut self, n: usize) -> DatasetBuilder {
        self.encode_workers = n;
        self
    }

    /// Worker threads compressing appended chunks (0 ⇒ available
    /// parallelism).
    pub fn append_workers(mut self, n: usize) -> DatasetBuilder {
        self.append_workers = n;
        self
    }

    /// Codec options applied to every chunk (`store_order` is forced
    /// on by the chunk codec).
    pub fn codec(mut self, codec: CompressOptions) -> DatasetBuilder {
        self.codec = codec;
        self
    }

    /// Decoded chunks the cache may pin (0 disables caching).
    pub fn cache_chunks(mut self, n: usize) -> DatasetBuilder {
        self.cache_chunks = n;
        self
    }

    /// Cache eviction policy (LRU, segmented LRU, CLOCK, or 2Q).
    pub fn cache_policy(mut self, policy: CachePolicy) -> DatasetBuilder {
        self.cache_policy = policy;
        self
    }

    /// Stripes the decoded-chunk cache over `n` shards (shard =
    /// `chunk_id % n`, each shard its own lock + policy instance) so
    /// concurrent sessions stop serializing on one cache mutex. `1`
    /// (the default) is the classic single-lock cache; `0` is a typed
    /// [`ConfigError::ZeroCacheShards`]. The effective count is
    /// clamped to [`cache_chunks`](DatasetBuilder::cache_chunks) so
    /// no shard ever has zero slots.
    pub fn cache_shards(mut self, n: usize) -> DatasetBuilder {
        self.cache_shards = n;
        self
    }

    /// Merges adjacent same-device chunk extents fetched by one
    /// operation into single device commands (fewer fixed per-command
    /// costs, longer sequential transfers). Off by default so the
    /// virtual timeline stays bit-identical to per-chunk charging.
    pub fn extent_coalescing(mut self, on: bool) -> DatasetBuilder {
        self.coalesce_extents = on;
        self
    }

    /// Single-device SSD timing. Conflicts with
    /// [`ssd_fleet`](DatasetBuilder::ssd_fleet).
    pub fn ssd(mut self, cfg: SsdConfig) -> DatasetBuilder {
        self.ssd = Some(cfg);
        self
    }

    /// Multi-SSD timing: chunk extents striped across `fleet`.
    /// Conflicts with [`ssd`](DatasetBuilder::ssd).
    pub fn ssd_fleet(mut self, fleet: Vec<SsdConfig>) -> DatasetBuilder {
        self.fleet = Some(fleet);
        self
    }

    /// Fleet placement policy (requires
    /// [`ssd_fleet`](DatasetBuilder::ssd_fleet)).
    pub fn placement(mut self, placement: Placement) -> DatasetBuilder {
        self.placement = Some(placement);
        self
    }

    /// Selects the byte backend: [`StoreBackend::Simulated`] (the
    /// default — chunk bytes served from the in-memory blob, devices
    /// purely virtual) or [`StoreBackend::File`] (chunk containers
    /// persisted to one file per device under the given directory and
    /// served with positioned reads). The real backend charges *zero*
    /// virtual seconds, so the virtual timeline is bit-identical
    /// either way; an empty path is a typed
    /// [`ConfigError::EmptyBackendPath`].
    pub fn backend(mut self, backend: StoreBackend) -> DatasetBuilder {
        self.backend = backend;
        self
    }

    /// Worker threads decoding missed chunks on multi-chunk fetches
    /// (0 ⇒ available parallelism).
    pub fn decode_workers(mut self, n: usize) -> DatasetBuilder {
        self.decode_workers = n;
        self
    }

    /// Enables the bounded fetch→decode pipeline on multi-chunk miss
    /// sets: one stage reads extents in manifest order while decode
    /// workers consume them in arrival order, at most `depth` fetched-
    /// but-undecoded chunks in flight. `0` (the default) keeps the
    /// unpipelined fan-out. Results are stitched in manifest order
    /// and the virtual timeline is unaffected (property-tested).
    pub fn decode_pipeline(mut self, depth: usize) -> DatasetBuilder {
        self.pipeline_depth = depth;
        self
    }

    /// Reactor worker threads executing operations.
    pub fn server_workers(mut self, n: usize) -> DatasetBuilder {
        self.server_workers = n;
        self
    }

    /// Submission-ring capacity (the queue-depth knob).
    pub fn queue_depth(mut self, n: usize) -> DatasetBuilder {
        self.queue_depth = n;
        self
    }

    /// Enables span tracing: every completed operation is recorded as
    /// an [`OpSpan`](crate::obs::OpSpan) — its virtual-time instants,
    /// per-device service intervals, and engine events — into the
    /// dataset's [`TraceBuffer`](crate::obs::TraceBuffer), readable
    /// via [`Dataset::trace`](super::Dataset::trace) and exportable
    /// as a Perfetto-loadable Chrome trace. Off by default. Tracing
    /// is observation-only: a traced run's virtual timeline is
    /// **bit-identical** to an untraced one (property-tested).
    pub fn tracing(mut self, on: bool) -> DatasetBuilder {
        self.tracing = on;
        self
    }

    /// Enables span tracing bounded to the most recent `n` spans: the
    /// trace buffer becomes a ring that evicts its oldest span on
    /// overflow (each eviction counted —
    /// [`MetricsSnapshot::trace_dropped`](crate::obs::MetricsSnapshot::trace_dropped)),
    /// so long open-loop runs can trace steady state without
    /// unbounded memory growth. Implies
    /// [`tracing(true)`](DatasetBuilder::tracing); `0` is a typed
    /// [`ConfigError::ZeroTraceCapacity`]. The bound is
    /// observation-side only — it never perturbs the timeline.
    pub fn tracing_capacity(mut self, n: usize) -> DatasetBuilder {
        self.tracing = true;
        self.tracing_capacity = Some(n);
        self
    }

    /// Registers one tenant; its [`TenantId`](super::TenantId) is its
    /// registration order. With no tenants registered the dataset
    /// serves the single default tenant. Open tenant-bound sessions
    /// with [`Dataset::session_for`](super::Dataset::session_for);
    /// [`Dataset::drive_tenants`](super::MultiTenantSpec) measures
    /// tenants against each other under a chosen scheduling policy.
    ///
    /// ```
    /// use sage_store::client::{DatasetBuilder, TenantId, TenantSpec};
    /// use sage_genomics::sim::{simulate_dataset, DatasetProfile};
    ///
    /// # fn main() -> Result<(), sage_store::StoreError> {
    /// let ds = simulate_dataset(&DatasetProfile::tiny_short(), 7);
    /// let dataset = DatasetBuilder::new()
    ///     .chunk_reads(32)
    ///     .tenant(TenantSpec::named("frontend").with_priority(200).with_weight(4.0))
    ///     .tenant(TenantSpec::named("batch").with_admission(8))
    ///     .encode(&ds.reads)?;
    /// assert_eq!(dataset.tenants().len(), 2);
    /// let fg = dataset.session_for(TenantId(0))?;
    /// assert_eq!(fg.tenant_spec().name, "frontend");
    /// # Ok(())
    /// # }
    /// ```
    pub fn tenant(mut self, spec: TenantSpec) -> DatasetBuilder {
        self.tenants.push(spec);
        self
    }

    /// Validates the folded configuration and splits it back into the
    /// layer configs.
    fn validate(&self) -> std::result::Result<(StoreOptions, EngineConfig), ConfigError> {
        if self.reads_per_chunk == 0 {
            return Err(ConfigError::ZeroChunkReads);
        }
        if self.server_workers == 0 {
            return Err(ConfigError::ZeroServerWorkers);
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.ssd.is_some() && self.fleet.is_some() {
            return Err(ConfigError::DeviceConflict);
        }
        if let Some(fleet) = &self.fleet {
            if fleet.is_empty() {
                return Err(ConfigError::EmptyFleet);
            }
        }
        if self.placement.is_some() && self.fleet.is_none() {
            return Err(ConfigError::PlacementWithoutFleet);
        }
        if self.cache_shards == 0 {
            return Err(ConfigError::ZeroCacheShards);
        }
        if self.tracing_capacity == Some(0) {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        if let StoreBackend::File(dir) = &self.backend {
            if dir.as_os_str().is_empty() {
                return Err(ConfigError::EmptyBackendPath);
            }
        }
        for tenant in &self.tenants {
            tenant.validate()?;
        }
        let store_opts = StoreOptions {
            reads_per_chunk: self.reads_per_chunk,
            workers: self.encode_workers,
            codec: self.codec.clone(),
        };
        let mut engine_cfg = EngineConfig::default()
            .with_cache_chunks(self.cache_chunks)
            .with_cache_policy(self.cache_policy)
            .with_cache_shards(self.cache_shards)
            .with_extent_coalescing(self.coalesce_extents)
            .with_tracing(self.tracing)
            .with_backend(self.backend.clone())
            .with_decode_workers(self.decode_workers)
            .with_decode_pipeline(self.pipeline_depth);
        engine_cfg.codec = self.codec.clone();
        engine_cfg.append_workers = self.append_workers;
        if let Some(ssd) = &self.ssd {
            engine_cfg = engine_cfg.with_ssd(ssd.clone());
        }
        if let Some(fleet) = &self.fleet {
            engine_cfg = engine_cfg.with_ssd_fleet(fleet.clone());
        }
        if let Some(placement) = self.placement {
            engine_cfg = engine_cfg.with_placement(placement);
        }
        debug_assert!(engine_cfg.validate().is_ok(), "builder pre-validates");
        Ok((store_opts, engine_cfg))
    }

    /// Encodes `reads` into a sharded chunk store and serves it.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::Config`] for invalid knob combinations;
    /// codec errors from the encode.
    pub fn encode(&self, reads: &ReadSet) -> Result<Dataset> {
        let (store_opts, engine_cfg) = self.validate()?;
        let sharded = encode_sharded(reads, &store_opts)?;
        self.serve_engine(sharded, engine_cfg)
    }

    /// Serves an already-encoded sharded store (the builder's chunk
    /// and encode knobs are ignored; the store was encoded
    /// elsewhere).
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::Config`] for invalid knob combinations.
    pub fn open(&self, sharded: ShardedStore) -> Result<Dataset> {
        let (_, engine_cfg) = self.validate()?;
        self.serve_engine(sharded, engine_cfg)
    }

    fn serve_engine(&self, sharded: ShardedStore, engine_cfg: EngineConfig) -> Result<Dataset> {
        let engine = Arc::new(StoreEngine::try_open(sharded, engine_cfg)?);
        Dataset::serve_multi(
            engine,
            self.server_workers,
            self.queue_depth,
            self.tracing,
            self.tracing_capacity,
            self.tenants.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreError;
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};

    fn reads() -> ReadSet {
        simulate_dataset(&DatasetProfile::tiny_short(), 5).reads
    }

    fn expect_config(err: StoreError, want: ConfigError) {
        match err {
            StoreError::Config(got) => assert_eq!(got, want),
            other => panic!("expected Config({want:?}), got {other:?}"),
        }
    }

    #[test]
    fn single_ssd_and_fleet_conflict_is_typed() {
        let err = DatasetBuilder::new()
            .ssd(SsdConfig::pcie())
            .ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::pcie()])
            .encode(&reads())
            .unwrap_err();
        expect_config(err, ConfigError::DeviceConflict);
        // Order does not matter — there is no last-wins.
        let err = DatasetBuilder::new()
            .ssd_fleet(vec![SsdConfig::pcie()])
            .ssd(SsdConfig::pcie())
            .encode(&reads())
            .unwrap_err();
        expect_config(err, ConfigError::DeviceConflict);
    }

    #[test]
    fn degenerate_knobs_are_typed_errors() {
        let rs = reads();
        expect_config(
            DatasetBuilder::new()
                .chunk_reads(0)
                .encode(&rs)
                .unwrap_err(),
            ConfigError::ZeroChunkReads,
        );
        expect_config(
            DatasetBuilder::new()
                .server_workers(0)
                .encode(&rs)
                .unwrap_err(),
            ConfigError::ZeroServerWorkers,
        );
        expect_config(
            DatasetBuilder::new()
                .queue_depth(0)
                .encode(&rs)
                .unwrap_err(),
            ConfigError::ZeroQueueDepth,
        );
        expect_config(
            DatasetBuilder::new()
                .ssd_fleet(Vec::new())
                .encode(&rs)
                .unwrap_err(),
            ConfigError::EmptyFleet,
        );
        expect_config(
            DatasetBuilder::new()
                .placement(Placement::CapacityWeighted)
                .encode(&rs)
                .unwrap_err(),
            ConfigError::PlacementWithoutFleet,
        );
    }

    #[test]
    fn valid_fleet_build_serves() {
        let rs = reads();
        let dataset = DatasetBuilder::new()
            .chunk_reads(16)
            .cache_chunks(4)
            .cache_policy(CachePolicy::Clock)
            .ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::sata()])
            .placement(Placement::CapacityWeighted)
            .server_workers(2)
            .queue_depth(4)
            .encode(&rs)
            .expect("valid build");
        assert_eq!(dataset.engine().n_devices(), 2);
        let got = dataset.session().get(0..8).unwrap().join().unwrap();
        assert_eq!(got.len(), 8);
        for (a, b) in got.iter().zip(rs.iter()) {
            assert_eq!(a.seq, b.seq);
        }
    }

    #[test]
    fn tracing_records_a_span_per_op_with_events() {
        let rs = reads();
        let dataset = DatasetBuilder::new()
            .chunk_reads(16)
            .ssd(SsdConfig::pcie())
            .tracing(true)
            .encode(&rs)
            .expect("traced build");
        assert!(dataset.trace().is_some());
        let c = dataset.session().get(0..8).unwrap().wait().unwrap();
        // The span is recorded before the ticket resolves.
        let spans = dataset.trace().unwrap().spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.kind, "get");
        assert_eq!(s.submitted_vt, c.report.submitted_vt);
        assert_eq!(s.completed_vt, c.report.completed_vt);
        assert_eq!(s.intervals.len(), c.report.charges().len());
        assert!(
            !s.events.is_empty(),
            "engine tracing must emit cache/device events"
        );
        assert_eq!(dataset.metrics().trace_spans, 1);
    }

    #[test]
    fn tracing_capacity_bounds_the_buffer_and_counts_drops() {
        let rs = reads();
        let dataset = DatasetBuilder::new()
            .chunk_reads(16)
            .ssd(SsdConfig::pcie())
            .tracing_capacity(3) // implies tracing(true)
            .encode(&rs)
            .expect("traced build");
        let trace = dataset.trace().expect("tracing implied by capacity");
        assert_eq!(trace.capacity(), Some(3));
        for i in 0..8 {
            dataset.session().get(i..i + 2).unwrap().join().unwrap();
        }
        // Ring holds the 3 newest spans; 5 were evicted and counted.
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 5);
        let m = dataset.metrics();
        assert_eq!(m.trace_spans, 3);
        assert_eq!(m.trace_dropped, 5);
        // Zero capacity is a typed config error.
        expect_config(
            DatasetBuilder::new()
                .chunk_reads(16)
                .tracing_capacity(0)
                .encode(&reads())
                .unwrap_err(),
            ConfigError::ZeroTraceCapacity,
        );
    }

    #[test]
    fn untraced_dataset_has_no_buffer_and_empty_intervals() {
        let rs = reads();
        let dataset = DatasetBuilder::new()
            .chunk_reads(16)
            .ssd(SsdConfig::pcie())
            .encode(&rs)
            .unwrap();
        assert!(dataset.trace().is_none());
        let c = dataset.session().get(0..4).unwrap().wait().unwrap();
        assert!(c.report.intervals().is_empty());
        assert!(c.report.trace.events.is_empty());
    }

    #[test]
    fn file_backend_knob_serves_real_bytes() {
        let rs = reads();
        let dir = std::env::temp_dir().join(format!("sage_builder_file_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dataset = DatasetBuilder::new()
            .chunk_reads(16)
            .ssd(SsdConfig::pcie())
            .backend(StoreBackend::File(dir.clone()))
            .decode_pipeline(2)
            .decode_workers(2)
            .encode(&rs)
            .expect("file-backed build");
        assert!(dataset.engine().file_backend().is_some());
        let got = dataset.session().get(0..8).unwrap().join().unwrap();
        for (a, b) in got.iter().zip(rs.iter()) {
            assert_eq!(a.seq, b.seq);
        }
        assert!(dataset.engine().file_backend().unwrap().reads() > 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
        // An empty path is caught before anything starts.
        expect_config(
            DatasetBuilder::new()
                .backend(StoreBackend::File(std::path::PathBuf::new()))
                .encode(&reads())
                .unwrap_err(),
            ConfigError::EmptyBackendPath,
        );
    }

    #[test]
    fn open_serves_a_preencoded_store() {
        let rs = reads();
        let sharded = encode_sharded(&rs, &StoreOptions::new(8)).unwrap();
        let n_chunks = sharded.n_chunks();
        let dataset = DatasetBuilder::new()
            .cache_chunks(0)
            .ssd(SsdConfig::pcie())
            .open(sharded)
            .expect("open");
        let c = dataset.session().get(0..4).unwrap().wait().unwrap();
        assert_eq!(c.value.len(), 4);
        assert_eq!(c.report.charges().len(), 1);
        assert!(c.report.device_seconds > 0.0);
        assert!(n_chunks > 1);
    }
}
