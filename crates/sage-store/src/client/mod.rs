//! # The typed session API — the store's serving front end
//!
//! This module is the one entry point for serving a dataset: a
//! [`DatasetBuilder`] folds the codec, engine, and server knobs into
//! one validated configuration and produces a [`Dataset`] — an
//! encoded chunk store with a running completion-queue reactor in
//! front of it. [`Session`]s opened on the dataset submit operations
//! and get back **typed tickets**: [`Session::get`] and
//! [`Session::scan`] return a [`Ticket<ReadView>`](Ticket) — a
//! zero-copy view over the engine's cached chunks —
//! [`Session::append`] a `Ticket<u64>`, so a variant-mismatch between
//! request and response is unrepresentable — there is no enum to
//! pattern-match, unlike the removed `Request`/`Response` pair.
//! Views read records in place; [`ReadView::to_owned`] is the
//! explicit opt-in to a per-record copy.
//!
//! Every ticket resolves to a [`Completion`] carrying an
//! [`OpReport`]: the device charges the operation incurred, its cache
//! outcome (chunks touched, hits, misses), and its virtual-time
//! instants (submit, service start, completion) on the reactor's
//! deterministic device timeline. The old `get`/`get_traced` split is
//! gone — every operation is traced, and the report arrives with the
//! result.
//!
//! Whether a full queue blocks the submitter (backpressure) or fails
//! the submission (load shedding) is a per-session knob,
//! [`SubmitMode`], replacing the `submit`/`try_submit` method split.
//!
//! ```
//! use sage_store::client::DatasetBuilder;
//! use sage_genomics::sim::{simulate_dataset, DatasetProfile};
//!
//! # fn main() -> Result<(), sage_store::StoreError> {
//! let ds = simulate_dataset(&DatasetProfile::tiny_short(), 3);
//! let dataset = DatasetBuilder::new().chunk_reads(32).encode(&ds.reads)?;
//! let session = dataset.session();
//! let ticket = session.get(10..20)?;          // Ticket<ReadSet>
//! let completion = ticket.wait()?;            // typed: no enum match
//! assert_eq!(completion.value.len(), 10);
//! assert_eq!(completion.report.chunks_touched(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! For load studies there are two shared drivers over one serving
//! machinery. The **closed-loop driver**
//! ([`Dataset::drive_closed_loop`]): `clients` logical clients each
//! keep one operation in flight, submitting their next at the virtual
//! instant the previous completed — the `io_sweep` and
//! `fig15_multissd` benches and the pipeline's store-served scenario
//! all run on it. And the **open-loop driver**
//! ([`Dataset::drive_open_loop`], in [`workload`]): seedable arrival
//! processes inject requests at generated virtual instants regardless
//! of completions, shedding at a bounded virtual queue, which is what
//! measures latency–throughput curves to saturation (`qos_sweep`,
//! `cache_ablation`). Both aggregate latency through one
//! [`LatencyStats`] percentile machinery.

mod builder;
mod driver;
mod session;
mod stats;
mod tenant;
pub mod workload;

pub use builder::DatasetBuilder;
pub use driver::{range_for, ClosedLoopSpec, LoadReport};
pub use session::{Dataset, ServerStats, Session};
pub use stats::{percentile, LatencyByKind, LatencyStats};
pub use tenant::{MultiQosReport, MultiTenantSpec, TenantId, TenantLoad, TenantSpec};

use crate::engine::OpValue;
use crate::view::ReadView;
use crate::{Result, StoreError};
use sage_io::{ChargeInterval, DeviceCharge};
use std::sync::mpsc::Receiver;

/// What a session does when the submission ring is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SubmitMode {
    /// Block until a slot frees up (backpressure). The default.
    #[default]
    Block,
    /// Fail the submission with [`StoreError::QueueFull`] instead of
    /// blocking (load shedding; rejections are counted in
    /// [`ServerStats`]).
    Fail,
}

/// Everything one served operation reports back: the engine-side
/// [`OpTrace`](crate::engine::OpTrace) (charges, cache outcome)
/// merged with the reactor-side virtual-time instants. Trace fields
/// live in the embedded trace — one definition, surfaced here through
/// accessors — so anything the engine learns to trace automatically
/// reaches every report.
#[derive(Debug, Clone, Default)]
pub struct OpReport {
    /// What the engine recorded serving the operation (device
    /// charges, chunks touched, cache outcome).
    pub trace: crate::engine::OpTrace,
    /// Virtual instant the operation was submitted.
    pub submitted_vt: f64,
    /// Virtual instant device service began.
    pub started_vt: f64,
    /// Virtual instant the operation completed.
    pub completed_vt: f64,
    /// Total device seconds the operation charged.
    pub device_seconds: f64,
    /// Completion queue (device) the operation finished on.
    pub device: usize,
    /// Per-charge service windows on the virtual timeline, in charge
    /// order. Empty unless the dataset was built with
    /// [`DatasetBuilder::tracing`] — recording them is
    /// observation-only and never moves the instants above.
    pub intervals: Vec<ChargeInterval>,
}

impl OpReport {
    /// Submit-to-completion virtual latency.
    pub fn latency(&self) -> f64 {
        self.completed_vt - self.submitted_vt
    }

    /// Virtual seconds the operation waited before service began.
    pub fn queue_wait(&self) -> f64 {
        self.started_vt - self.submitted_vt
    }

    /// Per-device charges the operation incurred (empty when every
    /// touched chunk was cached or timing is off).
    pub fn charges(&self) -> &[DeviceCharge] {
        &self.trace.charges
    }

    /// Chunks the operation touched (for appends: chunks written).
    pub fn chunks_touched(&self) -> u64 {
        self.trace.chunks_touched
    }

    /// Touched chunks served from the decoded-chunk cache.
    pub fn cache_hits(&self) -> u64 {
        self.trace.cache_hits
    }

    /// Touched chunks that had to be fetched and decoded.
    pub fn cache_misses(&self) -> u64 {
        self.trace.cache_misses
    }

    /// Device commands the operation issued. On a **timed** engine
    /// (single SSD or fleet) this equals the cache misses without
    /// coalescing; with extent coalescing on, runs of adjacent
    /// same-device chunks collapse into single commands and this
    /// drops accordingly (`cache_misses / device_ops` is the merge
    /// factor). On an untimed engine no device is modeled and this is
    /// always 0, misses included.
    pub fn device_ops(&self) -> u64 {
        self.trace.device_ops
    }

    /// Per-charge service windows (empty unless the dataset traces —
    /// see [`DatasetBuilder::tracing`]).
    pub fn intervals(&self) -> &[ChargeInterval] {
        &self.intervals
    }

    /// The operation as an [`OpSpan`](crate::obs::OpSpan) for trace
    /// recording, tagged with its submission `token` and kind label,
    /// attributed to the default tenant (0).
    pub fn to_span(&self, token: u64, kind: &'static str) -> crate::obs::OpSpan {
        self.to_span_for(token, kind, 0)
    }

    /// [`OpReport::to_span`] with explicit tenant attribution — the
    /// form multi-tenant serving paths use.
    pub fn to_span_for(&self, token: u64, kind: &'static str, tenant: usize) -> crate::obs::OpSpan {
        crate::obs::OpSpan {
            token,
            tenant,
            kind,
            submitted_vt: self.submitted_vt,
            started_vt: self.started_vt,
            completed_vt: self.completed_vt,
            device: self.device,
            device_seconds: self.device_seconds,
            intervals: self.intervals.clone(),
            chunks_touched: self.trace.chunks_touched,
            cache_hits: self.trace.cache_hits,
            cache_misses: self.trace.cache_misses,
            device_ops: self.trace.device_ops,
            events: self.trace.events.clone(),
        }
    }
}

/// A resolved operation: its typed value plus the [`OpReport`].
#[derive(Debug)]
pub struct Completion<T> {
    /// The operation's result (reads for get/scan, first read id for
    /// append).
    pub value: T,
    /// What serving it cost.
    pub report: OpReport,
}

/// What the dispatcher delivers for one operation.
pub(crate) type Payload = Result<(OpValue, OpReport)>;

/// A pending typed operation; [`Ticket::wait`] blocks for its
/// [`Completion`].
///
/// Dropping a ticket abandons the answer without cancelling the
/// operation — the server still executes it and discards the result.
#[derive(Debug)]
pub struct Ticket<T> {
    rx: Receiver<Payload>,
    /// Static op→value pairing chosen at the submit site; `None` is
    /// unreachable because each `Session` method submits exactly the
    /// op variant its extractor matches.
    extract: fn(OpValue) -> Option<T>,
}

impl<T> Ticket<T> {
    pub(crate) fn new(rx: Receiver<Payload>, extract: fn(OpValue) -> Option<T>) -> Ticket<T> {
        Ticket { rx, extract }
    }

    /// Blocks until the operation resolves.
    ///
    /// # Errors
    ///
    /// The operation's own error; [`StoreError::Cancelled`] when the
    /// dataset shut down with the operation still queued; or
    /// [`StoreError::QueueClosed`] when the serving side vanished
    /// without resolving the ticket at all.
    pub fn wait(self) -> Result<Completion<T>> {
        let (value, report) = self.rx.recv().map_err(|_| StoreError::QueueClosed)??;
        Ok(Completion {
            value: (self.extract)(value).expect("session ops pair each op with its value kind"),
            report,
        })
    }

    /// Blocks for the value alone, discarding the report.
    ///
    /// # Errors
    ///
    /// Same as [`Ticket::wait`].
    pub fn join(self) -> Result<T> {
        self.wait().map(|c| c.value)
    }
}

pub(crate) fn extract_reads(v: OpValue) -> Option<ReadView> {
    match v {
        OpValue::Reads(view) => Some(view),
        OpValue::Appended(_) => None,
    }
}

pub(crate) fn extract_appended(v: OpValue) -> Option<u64> {
    match v {
        OpValue::Appended(first) => Some(first),
        OpValue::Reads(_) => None,
    }
}
