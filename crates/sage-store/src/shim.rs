//! The deprecated `Request`/`Response`/`StoreServer` surface, kept as
//! a thin shim over the typed session layer ([`crate::client`]) for
//! one release.
//!
//! Everything here delegates to a [`Dataset`]/[`Session`] pair: a
//! [`Request`] is translated into the matching typed submission, and
//! the answer is folded back into the stringly [`Response`] enum.
//! New code should use [`crate::client`] directly — typed tickets
//! make the variant mismatch these enums force callers to
//! pattern-match around unrepresentable, and every result carries an
//! `OpReport`.

#![allow(deprecated)]

use crate::client::{Dataset, ServerStats, Session, SubmitMode, Ticket};
use crate::engine::StoreEngine;
use crate::Result;
use sage_genomics::{Read, ReadSet};
use sage_io::ReactorSnapshot;
use std::ops::Range;
use std::sync::Arc;

/// A query against a [`StoreServer`].
#[deprecated(
    since = "0.2.0",
    note = "use sage_store::client::Session — its typed tickets make request/response mismatches unrepresentable"
)]
pub enum Request {
    /// Fetch reads `range` (dataset-global ids).
    Get(Range<u64>),
    /// Return all reads matching the predicate.
    Scan(Box<dyn Fn(&Read) -> bool + Send>),
    /// Append reads to the dataset.
    Append(ReadSet),
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Request::Get(r) => write!(f, "Get({r:?})"),
            Request::Scan(_) => write!(f, "Scan(..)"),
            Request::Append(rs) => write!(f, "Append({} reads)", rs.len()),
        }
    }
}

/// A server's answer to one [`Request`].
#[deprecated(
    since = "0.2.0",
    note = "use sage_store::client::Session — typed tickets return ReadSet / u64 directly"
)]
#[derive(Debug)]
pub enum Response {
    /// Reads for a `Get` or `Scan`.
    Reads(ReadSet),
    /// First read id assigned by an `Append`.
    Appended(u64),
}

/// The typed ticket behind one shimmed request.
enum AnyTicket {
    Reads(Ticket<ReadSet>),
    Appended(Ticket<u64>),
}

/// A pending answer; [`RequestTicket::wait`] blocks for it.
#[deprecated(
    since = "0.2.0",
    note = "use sage_store::client::Ticket, which is typed by its result and carries an OpReport"
)]
pub struct RequestTicket {
    inner: AnyTicket,
}

impl std::fmt::Debug for RequestTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RequestTicket(..)")
    }
}

impl RequestTicket {
    /// Blocks until the server answers.
    ///
    /// # Errors
    ///
    /// The request's own error; [`crate::StoreError::Cancelled`] when
    /// the server shut down with the request still queued; or
    /// [`crate::StoreError::QueueClosed`] when the server vanished
    /// without resolving the ticket at all.
    pub fn wait(self) -> Result<Response> {
        match self.inner {
            AnyTicket::Reads(t) => t.join().map(Response::Reads),
            AnyTicket::Appended(t) => t.join().map(Response::Appended),
        }
    }
}

/// A bounded request queue over a completion-queue reactor in front
/// of an engine.
#[deprecated(
    since = "0.2.0",
    note = "use sage_store::client::{DatasetBuilder, Dataset, Session} — one validated entry point onto the same serving path"
)]
#[derive(Debug)]
pub struct StoreServer {
    dataset: Dataset,
}

impl StoreServer {
    /// Starts a reactor with `n_workers` threads over a submission
    /// ring of at most `queue_depth` in-flight requests.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers` or `queue_depth` is 0. (The replacement,
    /// [`crate::client::Dataset::serve`], returns a typed error
    /// instead.)
    pub fn start(engine: Arc<StoreEngine>, n_workers: usize, queue_depth: usize) -> StoreServer {
        StoreServer {
            dataset: Dataset::serve(engine, n_workers, queue_depth)
                .expect("need at least one worker and a non-empty queue"),
        }
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<StoreEngine> {
        self.dataset.engine()
    }

    fn submit_via(&self, session: &Session, request: Request) -> Result<RequestTicket> {
        let inner = match request {
            Request::Get(range) => AnyTicket::Reads(session.get(range)?),
            Request::Scan(pred) => AnyTicket::Reads(session.scan(pred)?),
            Request::Append(reads) => AnyTicket::Appended(session.append(&reads)?),
        };
        Ok(RequestTicket { inner })
    }

    /// Enqueues a request, blocking while the queue is full
    /// (backpressure), and returns a ticket for the answer.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::QueueClosed`] when the server already
    /// shut down.
    pub fn submit(&self, request: Request) -> Result<RequestTicket> {
        self.submit_via(&self.dataset.session(), request)
    }

    /// Enqueues a request without blocking: a full queue sheds the
    /// request instead of applying backpressure. Rejections are
    /// counted in [`StoreServer::stats`].
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::QueueFull`] when the ring is at capacity;
    /// [`crate::StoreError::QueueClosed`] when the server already
    /// shut down.
    pub fn try_submit(&self, request: Request) -> Result<RequestTicket> {
        self.submit_via(&self.dataset.session().with_mode(SubmitMode::Fail), request)
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Same as [`StoreServer::submit`] plus the request's own error.
    pub fn call(&self, request: Request) -> Result<Response> {
        self.submit(request)?.wait()
    }

    /// Server counters: accepted, completed, shed, and cancelled
    /// requests.
    pub fn stats(&self) -> ServerStats {
        self.dataset.stats()
    }

    /// The underlying reactor's accounting (virtual device busy
    /// seconds, utilization, horizon).
    pub fn reactor_snapshot(&self) -> ReactorSnapshot {
        self.dataset.reactor_snapshot()
    }

    /// Stops the workers after the queue drains and joins them.
    /// (Dropping the server does the same.)
    pub fn shutdown(self) {
        self.dataset.shutdown();
    }

    /// Stops immediately: requests still queued are *not* executed —
    /// their tickets resolve to [`crate::StoreError::Cancelled`].
    pub fn abort(self) {
        self.dataset.abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_sharded;
    use crate::{EngineConfig, StoreError, StoreOptions};
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};

    fn server(workers: usize, depth: usize) -> (StoreServer, ReadSet) {
        let reads = simulate_dataset(&DatasetProfile::tiny_short(), 5).reads;
        let store = encode_sharded(&reads, &StoreOptions::new(16)).unwrap();
        let engine = Arc::new(StoreEngine::open(
            store,
            EngineConfig::default().with_cache_chunks(8),
        ));
        (StoreServer::start(engine, workers, depth), reads)
    }

    #[test]
    fn shim_answers_all_request_kinds() {
        let (server, reads) = server(3, 8);
        match server.call(Request::Get(0..4)).unwrap() {
            Response::Reads(rs) => assert_eq!(rs.len(), 4),
            other => panic!("wrong response {other:?}"),
        }
        match server.call(Request::Scan(Box::new(|_| true))).unwrap() {
            Response::Reads(rs) => assert_eq!(rs.len(), reads.len()),
            other => panic!("wrong response {other:?}"),
        }
        let extra = ReadSet::from_reads(reads.reads()[..3].to_vec());
        match server.call(Request::Append(extra)).unwrap() {
            Response::Appended(first) => assert_eq!(first, reads.len() as u64),
            other => panic!("wrong response {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        server.shutdown();
    }

    #[test]
    fn shim_try_submit_sheds_load() {
        let (server, _) = server(1, 1);
        let slow = server
            .submit(Request::Scan(Box::new(|_| true)))
            .expect("first submit");
        let mut rejected = 0;
        let mut tickets = Vec::new();
        for _ in 0..32 {
            match server.try_submit(Request::Get(0..1)) {
                Ok(t) => tickets.push(t),
                Err(StoreError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected {other}"),
            }
        }
        assert!(rejected > 0, "ring never filled");
        assert_eq!(server.stats().rejected, rejected);
        assert!(slow.wait().is_ok());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn shim_abort_cancels_queued_requests() {
        let (server, _) = server(1, 32);
        let tickets: Vec<RequestTicket> = (0..16)
            .map(|_| server.submit(Request::Scan(Box::new(|_| true))).unwrap())
            .collect();
        server.abort();
        let mut cancelled = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => {}
                Err(StoreError::Cancelled) => cancelled += 1,
                Err(other) => panic!("unexpected {other}"),
            }
        }
        assert!(cancelled > 0, "abort cancelled nothing");
    }
}
