//! # Virtual-time observability: span tracing, unified metrics, and
//! Perfetto export
//!
//! The serving stack explains itself through this one substrate
//! instead of a scatter of one-off structs:
//!
//! - **Span tracing** — every completed operation becomes an
//!   [`OpSpan`] on the *virtual* timeline: its submit / service-start
//!   / completion instants, the per-device [`ChargeInterval`]s the
//!   scheduler actually booked, and the engine-side [`EngineEvent`]s
//!   (cache probes, decodes, device commands). Spans are recorded
//!   into a lock-cheap [`TraceBuffer`] behind the
//!   [`DatasetBuilder::tracing`](crate::client::DatasetBuilder::tracing)
//!   knob, with the hard invariant that **tracing never perturbs the
//!   timeline**: a traced run is bit-identical to an untraced one
//!   (the traced and untraced scheduler paths share one arithmetic —
//!   see [`sage_io::VirtualScheduler::dispatch_traced`] — and the
//!   property test `tracing_is_zero_perturbation` holds it).
//! - **Unified metrics** — [`MetricsSnapshot`] gathers the serving
//!   counters, cache outcomes, lock accounting, and device busy
//!   seconds behind one
//!   [`Dataset::metrics()`](crate::client::Dataset::metrics) call,
//!   each exposed as a typed [`MetricValue`] (counter or gauge);
//!   [`LogHistogram`] is the shared log-bucketed latency
//!   distribution every drive report aggregates through.
//! - **Windowed sampling** — [`MetricsRecorder::sample_every`] slices
//!   a span stream into fixed virtual-time windows and produces the
//!   queue-depth / utilization / hit-rate curves ([`WindowSeries`])
//!   the paper's figure-level evidence is built from. Window busy
//!   seconds integrate back to the scheduler's per-device busy
//!   totals by construction.
//! - **Export** — [`TraceBuffer::to_chrome_trace`] renders any run's
//!   span buffer as Chrome trace-event JSON loadable in Perfetto
//!   (<https://ui.perfetto.dev>), and [`replay`] re-dispatches a span
//!   stream through a fresh [`VirtualScheduler`] to prove the trace
//!   reconstructs every operation's instants exactly.

use sage_io::{ChargeInterval, DeviceCharge, VirtualScheduler};
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per octave,
/// bounding the relative quantization error of any representative
/// value to `1/(2·64)` ≈ 0.78%.
const SUB_BITS: u32 = 6;
const SUBS: usize = 1 << SUB_BITS;
/// Smallest tracked octave: `2^-40` s ≈ 0.9 ps — far below any
/// virtual latency the device models produce.
const MIN_EXP: i32 = -40;
/// Largest tracked octave: values up to `2^21` s ≈ 24 virtual days.
const MAX_EXP: i32 = 20;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// A log-bucketed histogram of non-negative samples (seconds).
///
/// Buckets are base-2 octaves split into 64 linear
/// sub-buckets, so any quantile is answered within ≈0.78% relative
/// error at O(1) memory regardless of sample count. `count`, `sum`,
/// `min`, and `max` are tracked **exactly** (the mean never
/// quantizes, and quantiles clamp into `[min, max]`). Quantization is
/// monotone: if `a ≤ b` then every quantile of a stream recording `a`
/// sorts no higher than one recording `b`.
///
/// This is the one latency distribution behind
/// [`LatencyStats`](crate::client::LatencyStats) — both drive
/// reports aggregate through it.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Box<[u64]>,
    /// Samples in `[0, 2^MIN_EXP)` — effectively the zero bucket.
    underflow: u64,
    /// Samples at or above `2^(MAX_EXP+1)`.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0u64; OCTAVES * SUBS].into_boxed_slice(),
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Bucket index of a positive finite sample, or `None` when it
    /// falls outside the tracked octave range.
    fn bucket_of(v: f64) -> Option<usize> {
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if !(MIN_EXP..=MAX_EXP).contains(&exp) {
            return None;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        Some((exp - MIN_EXP) as usize * SUBS + sub)
    }

    /// The midpoint value bucket `i` stands for.
    fn representative(i: usize) -> f64 {
        let exp = MIN_EXP + (i / SUBS) as i32;
        let sub = (i % SUBS) as f64;
        2f64.powi(exp) * (1.0 + (sub + 0.5) / SUBS as f64)
    }

    /// Records one sample. Non-finite samples are dropped; negative
    /// ones land in the underflow (zero) bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        match Self::bucket_of(v) {
            Some(i) if v > 0.0 => self.counts[i] += 1,
            _ if v > 0.0 && v >= 2f64.powi(MAX_EXP + 1) => self.overflow += 1,
            _ => self.underflow += 1,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (recording order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Nearest-rank quantile `p ∈ [0, 1]`, answered from the bucket
    /// representatives (≈0.78% relative error), clamped into the
    /// exact `[min, max]` envelope. 0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut cum = self.underflow;
        if rank < cum {
            return self.min();
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if rank < cum {
                return Self::representative(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(representative_value, count)` pairs
    /// in ascending value order (underflow and overflow excluded).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::representative(i), c))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One engine-side event serving an operation — the child events of
/// an [`OpSpan`]. Emitted by the engine only when tracing is on
/// ([`EngineConfig::with_tracing`](crate::engine::EngineConfig::with_tracing)),
/// in deterministic chunk order, so the tracing-off path allocates
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// The decoded-chunk cache was probed for `chunk`.
    CacheProbe {
        /// Chunk id probed.
        chunk: u32,
        /// Whether the probe hit.
        hit: bool,
    },
    /// `chunk` missed and was fetched + decoded.
    Decode {
        /// Chunk id decoded.
        chunk: u32,
    },
    /// One device command was issued (with extent coalescing, a
    /// single command may cover a whole run of adjacent chunks —
    /// compare the span's `cache_misses` to its `device_ops`).
    DeviceCommand {
        /// Device the command went to.
        device: usize,
        /// Service seconds charged.
        seconds: f64,
    },
}

impl EngineEvent {
    /// Display label (the Chrome-trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            EngineEvent::CacheProbe { hit: true, .. } => "cache_hit",
            EngineEvent::CacheProbe { hit: false, .. } => "cache_miss",
            EngineEvent::Decode { .. } => "decode",
            EngineEvent::DeviceCommand { .. } => "device_command",
        }
    }
}

/// One served operation on the virtual timeline: the structured span
/// the tracing tentpole records per completed op.
///
/// The span carries everything needed to reconstruct the operation's
/// [`OpReport`](crate::client::OpReport) exactly — the three
/// instants, the per-charge service windows as the scheduler booked
/// them, and the engine's cache outcome — which is what [`replay`]
/// and the `trace_explorer` bench assert.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    /// Submission token (drive sequence number or session token).
    pub token: u64,
    /// Operation kind label (`"get"`, `"scan"`, `"append"`).
    pub kind: &'static str,
    /// Virtual instant the operation was submitted.
    pub submitted_vt: f64,
    /// Virtual instant device service began.
    pub started_vt: f64,
    /// Virtual instant the operation completed.
    pub completed_vt: f64,
    /// Completion queue (device) the operation finished on.
    pub device: usize,
    /// Total device seconds charged.
    pub device_seconds: f64,
    /// Per-charge service windows in charge order — the per-device
    /// decomposition of the op's place on the timeline.
    pub intervals: Vec<ChargeInterval>,
    /// Chunks the operation touched.
    pub chunks_touched: u64,
    /// Touched chunks served from the cache.
    pub cache_hits: u64,
    /// Touched chunks fetched and decoded.
    pub cache_misses: u64,
    /// Device commands issued.
    pub device_ops: u64,
    /// Engine-side child events (empty unless engine tracing is on).
    pub events: Vec<EngineEvent>,
}

impl OpSpan {
    /// Submit-to-completion virtual latency.
    pub fn latency(&self) -> f64 {
        self.completed_vt - self.submitted_vt
    }

    /// Virtual seconds spent queued before service began.
    pub fn queue_wait(&self) -> f64 {
        self.started_vt - self.submitted_vt
    }

    /// The operation's device charges, recovered from its service
    /// intervals — feed these back through a fresh scheduler (see
    /// [`replay`]) to reproduce the span's instants bit-for-bit.
    pub fn charges(&self) -> Vec<DeviceCharge> {
        self.intervals
            .iter()
            .map(|iv| DeviceCharge {
                device: iv.device,
                seconds: iv.seconds,
            })
            .collect()
    }
}

/// The per-dataset span sink: a mutex over an append-only vector.
///
/// Recording is one short lock hold per completed op — observation
/// only, never on the virtual timeline (the scheduler's clocks are
/// advanced before anything is recorded, through arithmetic shared
/// with the untraced path).
///
/// ```
/// use sage_store::obs::{OpSpan, TraceBuffer};
///
/// let buf = TraceBuffer::new();
/// buf.record(OpSpan {
///     token: 0,
///     kind: "get",
///     submitted_vt: 0.0,
///     started_vt: 0.001,
///     completed_vt: 0.003,
///     device: 0,
///     device_seconds: 0.002,
///     intervals: Vec::new(),
///     chunks_touched: 1,
///     cache_hits: 0,
///     cache_misses: 1,
///     device_ops: 1,
///     events: Vec::new(),
/// });
/// let json = buf.to_chrome_trace();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\"") && json.contains("\"dur\":"));
/// // Load the written file in https://ui.perfetto.dev ("Open trace").
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    spans: Mutex<Vec<OpSpan>>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// Appends one span.
    pub fn record(&self, span: OpSpan) {
        self.spans.lock().expect("trace buffer poisoned").push(span);
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace buffer poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every recorded span.
    pub fn clear(&self) {
        self.spans.lock().expect("trace buffer poisoned").clear();
    }

    /// A copy of the recorded spans, in recording order. For drives
    /// that serialize execution (the open-loop driver, and the
    /// closed-loop driver at `workers == 1`) recording order equals
    /// dispatch order, which is what [`replay`] requires.
    pub fn spans(&self) -> Vec<OpSpan> {
        self.spans.lock().expect("trace buffer poisoned").clone()
    }

    /// Renders the buffer as Chrome trace-event JSON — load the
    /// string (written to a `.json` file) in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`.
    ///
    /// See [`chrome_trace`] for the track layout.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.spans())
    }
}

/// Renders a span slice as Chrome trace-event JSON.
///
/// Track layout: pid 1 ("ops") holds one `"X"` complete event per
/// operation, packed onto overlap-free lanes (tids) greedily by
/// submit instant, with the engine's child events as `"i"` instants
/// on the op's lane; pid 2 ("devices") holds one `"X"` event per
/// [`ChargeInterval`] on the owning device's tid — per-device service
/// is non-overlapping by scheduler construction, so every track is
/// well-nested. Timestamps are virtual microseconds.
pub fn chrome_trace(spans: &[OpSpan]) -> String {
    let us = |vt: f64| vt * 1e6;
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .submitted_vt
            .partial_cmp(&spans[b].submitted_vt)
            .expect("finite instants")
            .then(spans[a].token.cmp(&spans[b].token))
    });
    // Greedy lane packing: an op takes the first lane free at its
    // submit instant, so events on one lane never overlap.
    let mut lane_free: Vec<f64> = Vec::new();
    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2 + 2);
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"ops\"}}".into(),
    );
    events.push(
        "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"devices\"}}".into(),
    );
    for &ix in &order {
        let s = &spans[ix];
        let lane = match lane_free.iter().position(|&f| f <= s.submitted_vt) {
            Some(l) => l,
            None => {
                lane_free.push(0.0);
                lane_free.len() - 1
            }
        };
        lane_free[lane] = s.completed_vt;
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{lane},\"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\
             \"args\":{{\"token\":{},\"device\":{},\"device_seconds\":{:.9},\"queue_wait_us\":{:.3},\
             \"chunks\":{},\"cache_hits\":{},\"cache_misses\":{},\"device_ops\":{}}}}}",
            s.kind,
            us(s.submitted_vt),
            us(s.latency()).max(0.0),
            s.token,
            s.device,
            s.device_seconds,
            us(s.queue_wait()).max(0.0),
            s.chunks_touched,
            s.cache_hits,
            s.cache_misses,
            s.device_ops,
        ));
        for ev in &s.events {
            events.push(format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{lane},\"name\":\"{}\",\"ts\":{:.3},\"s\":\"t\"}}",
                ev.label(),
                us(s.started_vt),
            ));
        }
        for iv in &s.intervals {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":2,\"tid\":{},\"name\":\"service\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"args\":{{\"token\":{},\"seconds\":{:.9}}}}}",
                iv.device,
                us(iv.start_vt),
                us(iv.seconds),
                s.token,
                iv.seconds,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// Outcome of [`replay`]: how a span stream re-dispatched through a
/// fresh scheduler compares to what the trace recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Spans replayed.
    pub ops: usize,
    /// Spans whose replayed instants differed (0 for a faithful
    /// dispatch-order trace).
    pub mismatches: usize,
    /// Busy seconds per device accumulated by the replay scheduler.
    pub device_busy: Vec<f64>,
    /// The replay scheduler's final horizon.
    pub horizon: f64,
}

impl Replay {
    /// Whether every span's instants were reproduced bit-for-bit.
    pub fn exact(&self) -> bool {
        self.mismatches == 0
    }
}

/// Re-dispatches `spans` (in slice order, which must be dispatch
/// order) through a fresh [`VirtualScheduler`] over `devices`
/// devices, comparing every operation's replayed submit → start →
/// complete instants, total device seconds, and finishing device to
/// what the trace recorded — **bitwise**. A faithful trace replays
/// exactly because the replay runs the very arithmetic the original
/// dispatch ran.
pub fn replay(spans: &[OpSpan], devices: usize) -> Replay {
    let mut sched = VirtualScheduler::new(devices.max(1));
    let mut mismatches = 0usize;
    for s in spans {
        let charges = s.charges();
        let d = sched.dispatch(s.submitted_vt, &charges);
        let exact = d.started_vt == s.started_vt
            && d.completed_vt == s.completed_vt
            && d.device_seconds == s.device_seconds
            && d.device == s.device;
        if !exact {
            mismatches += 1;
        }
    }
    Replay {
        ops: spans.len(),
        mismatches,
        device_busy: sched.busy_seconds().to_vec(),
        horizon: sched.horizon(),
    }
}

// ---------------------------------------------------------------------
// Unified metrics
// ---------------------------------------------------------------------

/// A typed metric value in the unified registry view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time measurement.
    Gauge(f64),
}

/// One unified snapshot of everything the serving stack counts —
/// the registry subsuming the scattered per-layer stats structs.
/// Produced by [`Dataset::metrics()`](crate::client::Dataset::metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Operations accepted into the submission ring.
    pub submitted: u64,
    /// Operations completed (answered or failed).
    pub completed: u64,
    /// Fail-mode submissions shed because the ring was full.
    pub rejected: u64,
    /// Operations cancelled by a shutdown while still queued.
    pub cancelled: u64,
    /// Operations queued in the ring right now.
    pub queued: usize,
    /// Requests the engine served (gets + scans + appends), all
    /// entry points included.
    pub requests_served: u64,
    /// Payload bytes memcpy'd on the serving read path.
    pub bytes_copied: u64,
    /// Decoded-chunk cache hits (across shards).
    pub cache_hits: u64,
    /// Decoded-chunk cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Decoded chunks currently pinned.
    pub cache_len: usize,
    /// Cache capacity in chunks.
    pub cache_capacity: usize,
    /// Cache shard-lock acquisitions.
    pub lock_acquisitions: u64,
    /// Seconds spent holding cache shard locks (summed over shards).
    pub lock_busy_seconds: f64,
    /// Virtual busy (service) seconds per reactor device.
    pub device_busy: Vec<f64>,
    /// Per-device utilization over the reactor horizon.
    pub utilization: Vec<f64>,
    /// The reactor's virtual horizon (latest booked instant).
    pub horizon: f64,
    /// Device-model read commands issued.
    pub device_reads: u64,
    /// Device-model write commands issued.
    pub device_writes: u64,
    /// Device-model read service seconds.
    pub device_read_seconds: f64,
    /// Device-model write service seconds.
    pub device_write_seconds: f64,
    /// Spans recorded in the dataset's trace buffer (0 when tracing
    /// is off).
    pub trace_spans: usize,
}

impl MetricsSnapshot {
    /// Cache hit fraction in `[0, 1]` (0 when untouched).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// The registry view: every metric as a `(name, typed value)`
    /// pair, per-device entries included.
    pub fn metrics(&self) -> Vec<(String, MetricValue)> {
        let mut out: Vec<(String, MetricValue)> = vec![
            (
                "server.submitted".into(),
                MetricValue::Counter(self.submitted),
            ),
            (
                "server.completed".into(),
                MetricValue::Counter(self.completed),
            ),
            (
                "server.rejected".into(),
                MetricValue::Counter(self.rejected),
            ),
            (
                "server.cancelled".into(),
                MetricValue::Counter(self.cancelled),
            ),
            (
                "server.queued".into(),
                MetricValue::Gauge(self.queued as f64),
            ),
            (
                "engine.requests_served".into(),
                MetricValue::Counter(self.requests_served),
            ),
            (
                "engine.bytes_copied".into(),
                MetricValue::Counter(self.bytes_copied),
            ),
            ("cache.hits".into(), MetricValue::Counter(self.cache_hits)),
            (
                "cache.misses".into(),
                MetricValue::Counter(self.cache_misses),
            ),
            (
                "cache.evictions".into(),
                MetricValue::Counter(self.cache_evictions),
            ),
            (
                "cache.hit_rate".into(),
                MetricValue::Gauge(self.cache_hit_rate()),
            ),
            (
                "cache.len".into(),
                MetricValue::Gauge(self.cache_len as f64),
            ),
            (
                "cache.lock_acquisitions".into(),
                MetricValue::Counter(self.lock_acquisitions),
            ),
            (
                "cache.lock_busy_seconds".into(),
                MetricValue::Gauge(self.lock_busy_seconds),
            ),
            ("reactor.horizon".into(), MetricValue::Gauge(self.horizon)),
            (
                "device.reads".into(),
                MetricValue::Counter(self.device_reads),
            ),
            (
                "device.writes".into(),
                MetricValue::Counter(self.device_writes),
            ),
            (
                "device.read_seconds".into(),
                MetricValue::Gauge(self.device_read_seconds),
            ),
            (
                "device.write_seconds".into(),
                MetricValue::Gauge(self.device_write_seconds),
            ),
            (
                "trace.spans".into(),
                MetricValue::Counter(self.trace_spans as u64),
            ),
        ];
        for (d, (busy, util)) in self
            .device_busy
            .iter()
            .zip(self.utilization.iter().chain(std::iter::repeat(&0.0)))
            .enumerate()
        {
            out.push((
                format!("device.{d}.busy_seconds"),
                MetricValue::Gauge(*busy),
            ));
            out.push((format!("device.{d}.utilization"), MetricValue::Gauge(*util)));
        }
        out
    }

    /// Renders the snapshot as one JSON object (the metrics dump the
    /// bench bins write next to their trace exports).
    pub fn to_json(&self) -> String {
        let vec_json = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:.9}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"server\":{{\"submitted\":{},\"completed\":{},\"rejected\":{},\"cancelled\":{},\
             \"queued\":{}}},\"engine\":{{\"requests_served\":{},\"bytes_copied\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.6},\
             \"shards\":{},\"len\":{},\"capacity\":{},\"lock_acquisitions\":{},\
             \"lock_busy_seconds\":{:.9}}},\"reactor\":{{\"horizon\":{:.9},\
             \"device_busy\":[{}],\"utilization\":[{}]}},\"device\":{{\"reads\":{},\
             \"writes\":{},\"read_seconds\":{:.9},\"write_seconds\":{:.9}}},\
             \"trace\":{{\"spans\":{}}}}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.cancelled,
            self.queued,
            self.requests_served,
            self.bytes_copied,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate(),
            self.cache_shards,
            self.cache_len,
            self.cache_capacity,
            self.lock_acquisitions,
            self.lock_busy_seconds,
            self.horizon,
            vec_json(&self.device_busy),
            vec_json(&self.utilization),
            self.device_reads,
            self.device_writes,
            self.device_read_seconds,
            self.device_write_seconds,
            self.trace_spans,
        )
    }
}

// ---------------------------------------------------------------------
// Windowed time-series sampling
// ---------------------------------------------------------------------

/// Samples a span stream into fixed virtual-time windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsRecorder {
    dt: f64,
}

impl MetricsRecorder {
    /// A recorder slicing the timeline into `virtual_dt`-second
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics when `virtual_dt` is not a positive finite number.
    pub fn sample_every(virtual_dt: f64) -> MetricsRecorder {
        assert!(
            virtual_dt.is_finite() && virtual_dt > 0.0,
            "window width must be positive and finite"
        );
        MetricsRecorder { dt: virtual_dt }
    }

    /// The configured window width (virtual seconds).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Slices `spans` into windows, producing queue-depth,
    /// utilization, and hit-rate curves over `devices` devices.
    ///
    /// Every [`ChargeInterval`] is split **exactly** across the
    /// windows it overlaps — the final piece is the charge's demand
    /// minus the earlier pieces — so summing a device's windowed busy
    /// seconds recovers the scheduler's busy total up to f64
    /// addition reordering (the `trace_explorer` bench asserts the
    /// integration).
    pub fn sample(&self, spans: &[OpSpan], devices: usize) -> WindowSeries {
        let devices = devices.max(1);
        let horizon = spans.iter().map(|s| s.completed_vt).fold(0.0f64, f64::max);
        let windows = ((horizon / self.dt).ceil() as usize).max(1);
        let mut busy = vec![vec![0.0f64; devices]; windows];
        let mut queue_depth = vec![0u32; windows];
        let mut completions = vec![0u32; windows];
        let mut hits = vec![0u64; windows];
        let mut misses = vec![0u64; windows];
        let w_of = |vt: f64| ((vt / self.dt) as usize).min(windows - 1);
        for s in spans {
            // Queue depth sampled at window starts: the op occupies
            // every window whose start instant falls inside
            // [submitted, completed).
            let first = if s.submitted_vt <= 0.0 {
                0
            } else {
                (s.submitted_vt / self.dt).ceil() as usize
            };
            let mut w = first;
            while w < windows && (w as f64) * self.dt < s.completed_vt {
                queue_depth[w] += 1;
                w += 1;
            }
            let done = w_of(s.completed_vt);
            completions[done] += 1;
            hits[done] += s.cache_hits;
            misses[done] += s.cache_misses;
            for iv in &s.intervals {
                let dev = iv.device.min(devices - 1);
                if iv.end_vt <= iv.start_vt {
                    busy[w_of(iv.start_vt)][dev] += iv.seconds;
                    continue;
                }
                // Walk window indices directly (a boundary-landing
                // cursor can round `cursor/dt` down and stall a
                // cursor-driven walk); the index strictly increases,
                // so the walk is bounded by the window count.
                let mut w = w_of(iv.start_vt);
                let mut cursor = iv.start_vt;
                let mut remaining = iv.seconds;
                loop {
                    let w_end = (w as f64 + 1.0) * self.dt;
                    if w_end >= iv.end_vt || w == windows - 1 {
                        // Last piece takes the exact remainder so the
                        // pieces sum to the charge's demand.
                        busy[w][dev] += remaining;
                        break;
                    }
                    let piece = (w_end - cursor).max(0.0);
                    busy[w][dev] += piece;
                    remaining -= piece;
                    cursor = w_end;
                    w += 1;
                }
            }
        }
        let hit_rate = hits
            .iter()
            .zip(&misses)
            .map(|(&h, &m)| {
                if h + m == 0 {
                    0.0
                } else {
                    h as f64 / (h + m) as f64
                }
            })
            .collect();
        WindowSeries {
            dt: self.dt,
            devices,
            busy,
            queue_depth,
            completions,
            hit_rate,
        }
    }
}

/// Windowed time-series curves over the virtual timeline — what
/// [`MetricsRecorder::sample`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    /// Window width, virtual seconds.
    pub dt: f64,
    /// Devices covered.
    pub devices: usize,
    /// Busy seconds per `[window][device]`.
    pub busy: Vec<Vec<f64>>,
    /// Admitted-incomplete operations at each window's start instant.
    pub queue_depth: Vec<u32>,
    /// Operations completing within each window.
    pub completions: Vec<u32>,
    /// Chunk-touch cache hit rate of the ops completing in each
    /// window (0 where none completed).
    pub hit_rate: Vec<f64>,
}

impl WindowSeries {
    /// Window count.
    pub fn windows(&self) -> usize {
        self.busy.len()
    }

    /// Per-`[window][device]` utilization: busy seconds over the
    /// window width.
    pub fn utilization(&self) -> Vec<Vec<f64>> {
        self.busy
            .iter()
            .map(|w| w.iter().map(|b| b / self.dt).collect())
            .collect()
    }

    /// Total busy seconds per device, integrated across windows —
    /// matches the scheduler's per-device busy totals.
    pub fn total_busy(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.devices];
        for w in &self.busy {
            for (d, b) in w.iter().enumerate() {
                out[d] += b;
            }
        }
        out
    }

    /// Renders the series as one JSON object.
    pub fn to_json(&self) -> String {
        let util = self
            .utilization()
            .iter()
            .map(|w| {
                format!(
                    "[{}]",
                    w.iter()
                        .map(|u| format!("{u:.6}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let ints = |xs: &[u32]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"dt\":{:.9},\"windows\":{},\"devices\":{},\"queue_depth\":[{}],\
             \"completions\":[{}],\"hit_rate\":[{}],\"utilization\":[{}]}}",
            self.dt,
            self.windows(),
            self.devices,
            ints(&self.queue_depth),
            ints(&self.completions),
            self.hit_rate
                .iter()
                .map(|h| format!("{h:.6}"))
                .collect::<Vec<_>>()
                .join(","),
            util,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    #[test]
    fn histogram_tracks_exact_moments_and_tight_quantiles() {
        let mut h = LogHistogram::new();
        let vals: Vec<f64> = (1..=5000).map(|i| i as f64 * 1e-4).collect();
        for &v in &vals {
            h.record(v);
        }
        assert_eq!(h.count(), 5000);
        let exact_sum: f64 = vals.iter().sum();
        assert_eq!(h.sum(), exact_sum); // same addition order: bitwise
        assert_eq!(h.max(), 0.5);
        assert_eq!(h.min(), 1e-4);
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let q = h.quantile(p);
            let e = exact_percentile(&vals, p);
            assert!(
                (q - e).abs() <= e * 0.01 + 1e-12,
                "p{p}: histogram {q} vs exact {e}"
            );
        }
        // Quantiles are monotone in p.
        let qs: Vec<f64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_handles_edges() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.record(0.0);
        h.record(f64::NAN); // dropped
        h.record(1e-300); // underflow octave
        h.record(1e12); // overflow octave
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e12);
        assert_eq!(h.quantile(1.0), 1e12);
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn quantization_is_monotone_across_histograms() {
        // a ≤ b pointwise ⇒ every quantile of a ≤ same quantile of b.
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 1..=500 {
            a.record(i as f64 * 1e-3);
            b.record(i as f64 * 1.37e-3);
        }
        for p in [0.5, 0.9, 0.99, 1.0] {
            assert!(a.quantile(p) <= b.quantile(p));
        }
    }

    fn span(token: u64, submit: f64, intervals: Vec<ChargeInterval>) -> OpSpan {
        let started = intervals
            .iter()
            .map(|i| i.start_vt)
            .fold(f64::INFINITY, f64::min);
        let completed = intervals.iter().map(|i| i.end_vt).fold(submit, f64::max);
        let seconds: f64 = intervals.iter().map(|i| i.seconds).sum();
        let device = intervals
            .iter()
            .max_by(|a, b| a.end_vt.partial_cmp(&b.end_vt).unwrap())
            .map(|i| i.device)
            .unwrap_or(0);
        OpSpan {
            token,
            kind: "get",
            submitted_vt: submit,
            started_vt: if started.is_finite() { started } else { submit },
            completed_vt: completed,
            device,
            device_seconds: seconds,
            intervals,
            chunks_touched: 1,
            cache_hits: 0,
            cache_misses: 1,
            device_ops: 1,
            events: Vec::new(),
        }
    }

    /// Spans dispatched through a real scheduler so instants are
    /// exactly what a drive would record.
    fn scheduled_spans(n: u64, devices: usize) -> Vec<OpSpan> {
        let mut sched = VirtualScheduler::new(devices);
        (0..n)
            .map(|i| {
                let submit = i as f64 * 0.01;
                let charges = [
                    DeviceCharge {
                        device: i as usize % devices,
                        seconds: 0.004 + i as f64 * 1e-4,
                    },
                    DeviceCharge {
                        device: (i as usize + 1) % devices,
                        seconds: 0.002,
                    },
                ];
                let (d, intervals) = sched.dispatch_traced(submit, &charges);
                let mut s = span(i, submit, intervals);
                s.started_vt = d.started_vt;
                s.completed_vt = d.completed_vt;
                s.device_seconds = d.device_seconds;
                s.device = d.device;
                s
            })
            .collect()
    }

    #[test]
    fn replay_reproduces_scheduled_instants_bitwise() {
        let spans = scheduled_spans(32, 3);
        let r = replay(&spans, 3);
        assert!(r.exact(), "{} of {} spans mismatched", r.mismatches, r.ops);
        assert_eq!(r.ops, 32);
        assert!(r.device_busy.iter().all(|b| *b > 0.0));
        // Perturbing one instant is detected.
        let mut bad = spans;
        bad[7].completed_vt += 1e-9;
        assert!(!replay(&bad, 3).exact());
    }

    #[test]
    fn windowed_busy_integrates_to_scheduler_busy() {
        let spans = scheduled_spans(48, 2);
        let mut sched = VirtualScheduler::new(2);
        for s in &spans {
            sched.dispatch(s.submitted_vt, &s.charges());
        }
        let series = MetricsRecorder::sample_every(0.0137).sample(&spans, 2);
        let total = series.total_busy();
        for (d, b) in sched.busy_seconds().iter().enumerate() {
            assert!(
                (total[d] - b).abs() <= b.abs() * 1e-12 + 1e-15,
                "device {d}: windowed {} vs scheduler {b}",
                total[d]
            );
        }
        assert!(series.windows() >= 2);
        assert!(series.queue_depth.iter().any(|&q| q > 0));
        assert_eq!(
            series
                .completions
                .iter()
                .map(|&c| c as usize)
                .sum::<usize>(),
            spans.len()
        );
        let json = series.to_json();
        assert!(json.contains("\"queue_depth\"") && json.contains("\"utilization\""));
    }

    #[test]
    fn chrome_trace_packs_ops_onto_nonoverlapping_lanes() {
        let spans = scheduled_spans(24, 2);
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        // One X event per op plus one per charge interval.
        let n_intervals: usize = spans.iter().map(|s| s.intervals.len()).sum();
        let xs = json.matches("\"ph\":\"X\"").count();
        assert_eq!(xs, spans.len() + n_intervals);
        assert!(json.contains("\"name\":\"service\""));
        assert!(json.contains("\"name\":\"get\""));
        // Required trace-event fields are present on complete events.
        assert!(json.contains("\"ts\":") && json.contains("\"dur\":"));
    }

    #[test]
    fn metric_registry_lists_typed_values() {
        let snap = MetricsSnapshot {
            submitted: 10,
            completed: 9,
            rejected: 1,
            cancelled: 0,
            queued: 0,
            requests_served: 9,
            bytes_copied: 4096,
            cache_hits: 6,
            cache_misses: 3,
            cache_evictions: 1,
            cache_shards: 2,
            cache_len: 2,
            cache_capacity: 4,
            lock_acquisitions: 9,
            lock_busy_seconds: 1e-6,
            device_busy: vec![0.5, 0.25],
            utilization: vec![0.5, 0.25],
            horizon: 1.0,
            device_reads: 3,
            device_writes: 0,
            device_read_seconds: 0.75,
            device_write_seconds: 0.0,
            trace_spans: 9,
        };
        assert!((snap.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let metrics = snap.metrics();
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "cache.hits" && *v == MetricValue::Counter(6)));
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "device.1.utilization" && *v == MetricValue::Gauge(0.25)));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["\"server\"", "\"cache\"", "\"reactor\"", "\"device_busy\""] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
