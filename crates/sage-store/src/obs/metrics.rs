//! Unified metrics snapshot/registry and windowed time-series
//! sampling over span streams.

use super::OpSpan;

// ---------------------------------------------------------------------
// Unified metrics
// ---------------------------------------------------------------------

/// A typed metric value in the unified registry view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time measurement.
    Gauge(f64),
}

/// One unified snapshot of everything the serving stack counts —
/// the registry subsuming the scattered per-layer stats structs.
/// Produced by [`Dataset::metrics()`](crate::client::Dataset::metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Operations accepted into the submission ring.
    pub submitted: u64,
    /// Operations completed (answered or failed).
    pub completed: u64,
    /// Fail-mode submissions shed because the ring was full.
    pub rejected: u64,
    /// Operations cancelled by a shutdown while still queued.
    pub cancelled: u64,
    /// Operations queued in the ring right now.
    pub queued: usize,
    /// Requests the engine served (gets + scans + appends), all
    /// entry points included.
    pub requests_served: u64,
    /// Payload bytes memcpy'd on the serving read path.
    pub bytes_copied: u64,
    /// Decoded-chunk cache hits (across shards).
    pub cache_hits: u64,
    /// Decoded-chunk cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Decoded chunks currently pinned.
    pub cache_len: usize,
    /// Cache capacity in chunks.
    pub cache_capacity: usize,
    /// Cache shard-lock acquisitions.
    pub lock_acquisitions: u64,
    /// Seconds spent holding cache shard locks (summed over shards).
    pub lock_busy_seconds: f64,
    /// Virtual busy (service) seconds per reactor device.
    pub device_busy: Vec<f64>,
    /// Per-device utilization over the reactor horizon.
    pub utilization: Vec<f64>,
    /// The reactor's virtual horizon (latest booked instant).
    pub horizon: f64,
    /// Device-model read commands issued.
    pub device_reads: u64,
    /// Device-model write commands issued.
    pub device_writes: u64,
    /// Device-model read service seconds.
    pub device_read_seconds: f64,
    /// Device-model write service seconds.
    pub device_write_seconds: f64,
    /// Chunks decompressed on the miss path (dedup'd fills excluded).
    pub chunks_decoded: u64,
    /// Payload bytes (bases + quality) produced by those decodes.
    pub bytes_decoded: u64,
    /// Wall-clock seconds spent inside chunk decode.
    pub decode_seconds: f64,
    /// Racing misses resolved by another session's in-flight decode
    /// (the single-flight dedup counter).
    pub dedup_decodes: u64,
    /// Decode-pipeline worker occupancy in `[0, 1]` — busy worker
    /// seconds over worker-seconds available; 0 when the pipeline
    /// never ran.
    pub pipeline_occupancy: f64,
    /// Spans held in the dataset's trace buffer (0 when tracing is
    /// off).
    pub trace_spans: usize,
    /// Spans evicted by a bounded trace ring
    /// ([`DatasetBuilder::tracing_capacity`](crate::client::DatasetBuilder::tracing_capacity));
    /// 0 for unbounded tracing or tracing off.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Cache hit fraction in `[0, 1]` (0 when untouched).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// The registry view: every metric as a `(name, typed value)`
    /// pair, per-device entries included.
    pub fn metrics(&self) -> Vec<(String, MetricValue)> {
        let mut out: Vec<(String, MetricValue)> = vec![
            (
                "server.submitted".into(),
                MetricValue::Counter(self.submitted),
            ),
            (
                "server.completed".into(),
                MetricValue::Counter(self.completed),
            ),
            (
                "server.rejected".into(),
                MetricValue::Counter(self.rejected),
            ),
            (
                "server.cancelled".into(),
                MetricValue::Counter(self.cancelled),
            ),
            (
                "server.queued".into(),
                MetricValue::Gauge(self.queued as f64),
            ),
            (
                "engine.requests_served".into(),
                MetricValue::Counter(self.requests_served),
            ),
            (
                "engine.bytes_copied".into(),
                MetricValue::Counter(self.bytes_copied),
            ),
            ("cache.hits".into(), MetricValue::Counter(self.cache_hits)),
            (
                "cache.misses".into(),
                MetricValue::Counter(self.cache_misses),
            ),
            (
                "cache.evictions".into(),
                MetricValue::Counter(self.cache_evictions),
            ),
            (
                "cache.hit_rate".into(),
                MetricValue::Gauge(self.cache_hit_rate()),
            ),
            (
                "cache.len".into(),
                MetricValue::Gauge(self.cache_len as f64),
            ),
            (
                "cache.lock_acquisitions".into(),
                MetricValue::Counter(self.lock_acquisitions),
            ),
            (
                "cache.lock_busy_seconds".into(),
                MetricValue::Gauge(self.lock_busy_seconds),
            ),
            ("reactor.horizon".into(), MetricValue::Gauge(self.horizon)),
            (
                "device.reads".into(),
                MetricValue::Counter(self.device_reads),
            ),
            (
                "device.writes".into(),
                MetricValue::Counter(self.device_writes),
            ),
            (
                "device.read_seconds".into(),
                MetricValue::Gauge(self.device_read_seconds),
            ),
            (
                "device.write_seconds".into(),
                MetricValue::Gauge(self.device_write_seconds),
            ),
            (
                "decode.chunks".into(),
                MetricValue::Counter(self.chunks_decoded),
            ),
            (
                "decode.bytes".into(),
                MetricValue::Counter(self.bytes_decoded),
            ),
            (
                "decode.seconds".into(),
                MetricValue::Gauge(self.decode_seconds),
            ),
            (
                "decode.dedup".into(),
                MetricValue::Counter(self.dedup_decodes),
            ),
            (
                "decode.pipeline_occupancy".into(),
                MetricValue::Gauge(self.pipeline_occupancy),
            ),
            (
                "trace.spans".into(),
                MetricValue::Counter(self.trace_spans as u64),
            ),
            (
                "trace.dropped_spans".into(),
                MetricValue::Counter(self.trace_dropped),
            ),
        ];
        for (d, (busy, util)) in self
            .device_busy
            .iter()
            .zip(self.utilization.iter().chain(std::iter::repeat(&0.0)))
            .enumerate()
        {
            out.push((
                format!("device.{d}.busy_seconds"),
                MetricValue::Gauge(*busy),
            ));
            out.push((format!("device.{d}.utilization"), MetricValue::Gauge(*util)));
        }
        out
    }

    /// Renders the snapshot as one JSON object (the metrics dump the
    /// bench bins write next to their trace exports).
    pub fn to_json(&self) -> String {
        let vec_json = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:.9}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"server\":{{\"submitted\":{},\"completed\":{},\"rejected\":{},\"cancelled\":{},\
             \"queued\":{}}},\"engine\":{{\"requests_served\":{},\"bytes_copied\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.6},\
             \"shards\":{},\"len\":{},\"capacity\":{},\"lock_acquisitions\":{},\
             \"lock_busy_seconds\":{:.9}}},\"reactor\":{{\"horizon\":{:.9},\
             \"device_busy\":[{}],\"utilization\":[{}]}},\"device\":{{\"reads\":{},\
             \"writes\":{},\"read_seconds\":{:.9},\"write_seconds\":{:.9}}},\
             \"decode\":{{\"chunks\":{},\"bytes\":{},\"seconds\":{:.9},\"dedup\":{},\
             \"pipeline_occupancy\":{:.6}}},\
             \"trace\":{{\"spans\":{},\"dropped\":{}}}}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.cancelled,
            self.queued,
            self.requests_served,
            self.bytes_copied,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate(),
            self.cache_shards,
            self.cache_len,
            self.cache_capacity,
            self.lock_acquisitions,
            self.lock_busy_seconds,
            self.horizon,
            vec_json(&self.device_busy),
            vec_json(&self.utilization),
            self.device_reads,
            self.device_writes,
            self.device_read_seconds,
            self.device_write_seconds,
            self.chunks_decoded,
            self.bytes_decoded,
            self.decode_seconds,
            self.dedup_decodes,
            self.pipeline_occupancy,
            self.trace_spans,
            self.trace_dropped,
        )
    }
}

// ---------------------------------------------------------------------
// Windowed time-series sampling
// ---------------------------------------------------------------------

/// Samples a span stream into fixed virtual-time windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsRecorder {
    dt: f64,
}

impl MetricsRecorder {
    /// A recorder slicing the timeline into `virtual_dt`-second
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics when `virtual_dt` is not a positive finite number.
    pub fn sample_every(virtual_dt: f64) -> MetricsRecorder {
        assert!(
            virtual_dt.is_finite() && virtual_dt > 0.0,
            "window width must be positive and finite"
        );
        MetricsRecorder { dt: virtual_dt }
    }

    /// The configured window width (virtual seconds).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Slices `spans` into windows, producing queue-depth,
    /// utilization, and hit-rate curves over `devices` devices.
    ///
    /// Every [`ChargeInterval`](sage_io::ChargeInterval) is split
    /// **exactly** across the windows it overlaps — the final piece
    /// is the charge's demand minus the earlier pieces — so summing a
    /// device's windowed busy seconds recovers the scheduler's busy
    /// total up to f64 addition reordering (the `trace_explorer`
    /// bench asserts the integration).
    pub fn sample(&self, spans: &[OpSpan], devices: usize) -> WindowSeries {
        let devices = devices.max(1);
        let horizon = spans.iter().map(|s| s.completed_vt).fold(0.0f64, f64::max);
        let windows = ((horizon / self.dt).ceil() as usize).max(1);
        let mut busy = vec![vec![0.0f64; devices]; windows];
        let mut queue_depth = vec![0u32; windows];
        let mut completions = vec![0u32; windows];
        let mut hits = vec![0u64; windows];
        let mut misses = vec![0u64; windows];
        let w_of = |vt: f64| ((vt / self.dt) as usize).min(windows - 1);
        for s in spans {
            // Queue depth sampled at window starts: the op occupies
            // every window whose start instant falls inside
            // [submitted, completed).
            let first = if s.submitted_vt <= 0.0 {
                0
            } else {
                (s.submitted_vt / self.dt).ceil() as usize
            };
            let mut w = first;
            while w < windows && (w as f64) * self.dt < s.completed_vt {
                queue_depth[w] += 1;
                w += 1;
            }
            let done = w_of(s.completed_vt);
            completions[done] += 1;
            hits[done] += s.cache_hits;
            misses[done] += s.cache_misses;
            for iv in &s.intervals {
                let dev = iv.device.min(devices - 1);
                if iv.end_vt <= iv.start_vt {
                    busy[w_of(iv.start_vt)][dev] += iv.seconds;
                    continue;
                }
                // Walk window indices directly (a boundary-landing
                // cursor can round `cursor/dt` down and stall a
                // cursor-driven walk); the index strictly increases,
                // so the walk is bounded by the window count.
                let mut w = w_of(iv.start_vt);
                let mut cursor = iv.start_vt;
                let mut remaining = iv.seconds;
                loop {
                    let w_end = (w as f64 + 1.0) * self.dt;
                    if w_end >= iv.end_vt || w == windows - 1 {
                        // Last piece takes the exact remainder so the
                        // pieces sum to the charge's demand.
                        busy[w][dev] += remaining;
                        break;
                    }
                    let piece = (w_end - cursor).max(0.0);
                    busy[w][dev] += piece;
                    remaining -= piece;
                    cursor = w_end;
                    w += 1;
                }
            }
        }
        let hit_rate = hits
            .iter()
            .zip(&misses)
            .map(|(&h, &m)| {
                if h + m == 0 {
                    0.0
                } else {
                    h as f64 / (h + m) as f64
                }
            })
            .collect();
        WindowSeries {
            dt: self.dt,
            devices,
            busy,
            queue_depth,
            completions,
            hit_rate,
        }
    }
}

/// Windowed time-series curves over the virtual timeline — what
/// [`MetricsRecorder::sample`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    /// Window width, virtual seconds.
    pub dt: f64,
    /// Devices covered.
    pub devices: usize,
    /// Busy seconds per `[window][device]`.
    pub busy: Vec<Vec<f64>>,
    /// Admitted-incomplete operations at each window's start instant.
    pub queue_depth: Vec<u32>,
    /// Operations completing within each window.
    pub completions: Vec<u32>,
    /// Chunk-touch cache hit rate of the ops completing in each
    /// window (0 where none completed).
    pub hit_rate: Vec<f64>,
}

impl WindowSeries {
    /// Window count.
    pub fn windows(&self) -> usize {
        self.busy.len()
    }

    /// Per-`[window][device]` utilization: busy seconds over the
    /// window width.
    pub fn utilization(&self) -> Vec<Vec<f64>> {
        self.busy
            .iter()
            .map(|w| w.iter().map(|b| b / self.dt).collect())
            .collect()
    }

    /// Total busy seconds per device, integrated across windows —
    /// matches the scheduler's per-device busy totals.
    pub fn total_busy(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.devices];
        for w in &self.busy {
            for (d, b) in w.iter().enumerate() {
                out[d] += b;
            }
        }
        out
    }

    /// Renders the series as one JSON object.
    pub fn to_json(&self) -> String {
        let util = self
            .utilization()
            .iter()
            .map(|w| {
                format!(
                    "[{}]",
                    w.iter()
                        .map(|u| format!("{u:.6}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let ints = |xs: &[u32]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"dt\":{:.9},\"windows\":{},\"devices\":{},\"queue_depth\":[{}],\
             \"completions\":[{}],\"hit_rate\":[{}],\"utilization\":[{}]}}",
            self.dt,
            self.windows(),
            self.devices,
            ints(&self.queue_depth),
            ints(&self.completions),
            self.hit_rate
                .iter()
                .map(|h| format!("{h:.6}"))
                .collect::<Vec<_>>()
                .join(","),
            util,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::scheduled_spans;
    use super::*;
    use sage_io::VirtualScheduler;

    #[test]
    fn windowed_busy_integrates_to_scheduler_busy() {
        let spans = scheduled_spans(48, 2);
        let mut sched = VirtualScheduler::new(2);
        for s in &spans {
            sched.dispatch(s.submitted_vt, &s.charges());
        }
        let series = MetricsRecorder::sample_every(0.0137).sample(&spans, 2);
        let total = series.total_busy();
        for (d, b) in sched.busy_seconds().iter().enumerate() {
            assert!(
                (total[d] - b).abs() <= b.abs() * 1e-12 + 1e-15,
                "device {d}: windowed {} vs scheduler {b}",
                total[d]
            );
        }
        assert!(series.windows() >= 2);
        assert!(series.queue_depth.iter().any(|&q| q > 0));
        assert_eq!(
            series
                .completions
                .iter()
                .map(|&c| c as usize)
                .sum::<usize>(),
            spans.len()
        );
        let json = series.to_json();
        assert!(json.contains("\"queue_depth\"") && json.contains("\"utilization\""));
    }

    #[test]
    fn metric_registry_lists_typed_values() {
        let snap = MetricsSnapshot {
            submitted: 10,
            completed: 9,
            rejected: 1,
            cancelled: 0,
            queued: 0,
            requests_served: 9,
            bytes_copied: 4096,
            cache_hits: 6,
            cache_misses: 3,
            cache_evictions: 1,
            cache_shards: 2,
            cache_len: 2,
            cache_capacity: 4,
            lock_acquisitions: 9,
            lock_busy_seconds: 1e-6,
            device_busy: vec![0.5, 0.25],
            utilization: vec![0.5, 0.25],
            horizon: 1.0,
            device_reads: 3,
            device_writes: 0,
            device_read_seconds: 0.75,
            device_write_seconds: 0.0,
            chunks_decoded: 3,
            bytes_decoded: 2048,
            decode_seconds: 0.001,
            dedup_decodes: 1,
            pipeline_occupancy: 0.5,
            trace_spans: 9,
            trace_dropped: 2,
        };
        assert!((snap.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let metrics = snap.metrics();
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "cache.hits" && *v == MetricValue::Counter(6)));
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "device.1.utilization" && *v == MetricValue::Gauge(0.25)));
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "trace.dropped_spans" && *v == MetricValue::Counter(2)));
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "decode.chunks" && *v == MetricValue::Counter(3)));
        assert!(metrics
            .iter()
            .any(|(n, v)| n == "decode.pipeline_occupancy" && *v == MetricValue::Gauge(0.5)));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"server\"",
            "\"cache\"",
            "\"reactor\"",
            "\"device_busy\"",
            "\"dropped\":2",
            "\"decode\"",
            "\"dedup\":1",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
