//! # Virtual-time observability: span tracing, unified metrics,
//! Perfetto export, and the analysis tier
//!
//! The serving stack explains itself through this one substrate
//! instead of a scatter of one-off structs:
//!
//! - **Span tracing** — every completed operation becomes an
//!   [`OpSpan`] on the *virtual* timeline: its submit / service-start
//!   / completion instants, the per-device [`ChargeInterval`]s the
//!   scheduler actually booked, and the engine-side [`EngineEvent`]s
//!   (cache probes, decodes, device commands). Spans are recorded
//!   into a lock-cheap [`TraceBuffer`] behind the
//!   [`DatasetBuilder::tracing`](crate::client::DatasetBuilder::tracing)
//!   knob (optionally bounded to a ring via
//!   [`DatasetBuilder::tracing_capacity`](crate::client::DatasetBuilder::tracing_capacity)),
//!   with the hard invariant that **tracing never perturbs the
//!   timeline**: a traced run is bit-identical to an untraced one
//!   (the traced and untraced scheduler paths share one arithmetic —
//!   see [`sage_io::VirtualScheduler::dispatch_traced`] — and the
//!   property test `tracing_is_zero_perturbation` holds it).
//! - **Unified metrics** — [`MetricsSnapshot`] gathers the serving
//!   counters, cache outcomes, lock accounting, and device busy
//!   seconds behind one
//!   [`Dataset::metrics()`](crate::client::Dataset::metrics) call,
//!   each exposed as a typed [`MetricValue`] (counter or gauge);
//!   [`LogHistogram`] is the shared log-bucketed latency
//!   distribution every drive report aggregates through.
//! - **Windowed sampling** — [`MetricsRecorder::sample_every`] slices
//!   a span stream into fixed virtual-time windows and produces the
//!   queue-depth / utilization / hit-rate curves ([`WindowSeries`])
//!   the paper's figure-level evidence is built from. Window busy
//!   seconds integrate back to the scheduler's per-device busy
//!   totals by construction.
//! - **Analysis** — [`analysis`] turns span streams into answers:
//!   per-op latency blame that sums bitwise to the op's latency
//!   ([`analysis::LatencyBlame`]), windowed bottleneck labels and a
//!   run-level [`analysis::BlameReport`], top-k tail forensics per op
//!   kind, and deterministic SLO burn-rate monitors
//!   ([`analysis::SloSpec`]). Analysis is strictly read-only: it
//!   consumes recorded spans and never touches the timeline.
//! - **Export** — [`TraceBuffer::to_chrome_trace`] renders any run's
//!   span buffer as Chrome trace-event JSON loadable in Perfetto
//!   (<https://ui.perfetto.dev>), and [`replay`] re-dispatches a span
//!   stream through a fresh [`VirtualScheduler`] to prove the trace
//!   reconstructs every operation's instants exactly.

use sage_io::{ChargeInterval, DeviceCharge, VirtualScheduler};
use std::collections::VecDeque;
use std::sync::Mutex;

pub mod analysis;
mod hist;
mod metrics;

pub use hist::LogHistogram;
pub use metrics::{MetricValue, MetricsRecorder, MetricsSnapshot, WindowSeries};

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One engine-side event serving an operation — the child events of
/// an [`OpSpan`]. Emitted by the engine only when tracing is on
/// ([`EngineConfig::with_tracing`](crate::engine::EngineConfig::with_tracing)),
/// in deterministic chunk order, so the tracing-off path allocates
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// The decoded-chunk cache was probed for `chunk`.
    CacheProbe {
        /// Chunk id probed.
        chunk: u32,
        /// Whether the probe hit.
        hit: bool,
    },
    /// `chunk` missed and was fetched + decoded.
    Decode {
        /// Chunk id decoded.
        chunk: u32,
    },
    /// One device command was issued (with extent coalescing, a
    /// single command may cover a whole run of adjacent chunks —
    /// compare the span's `cache_misses` to its `device_ops`).
    DeviceCommand {
        /// Device the command went to.
        device: usize,
        /// Service seconds charged.
        seconds: f64,
    },
}

impl EngineEvent {
    /// Display label (the Chrome-trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            EngineEvent::CacheProbe { hit: true, .. } => "cache_hit",
            EngineEvent::CacheProbe { hit: false, .. } => "cache_miss",
            EngineEvent::Decode { .. } => "decode",
            EngineEvent::DeviceCommand { .. } => "device_command",
        }
    }
}

/// One served operation on the virtual timeline: the structured span
/// the tracing tentpole records per completed op.
///
/// The span carries everything needed to reconstruct the operation's
/// [`OpReport`](crate::client::OpReport) exactly — the three
/// instants, the per-charge service windows as the scheduler booked
/// them, and the engine's cache outcome — which is what [`replay`]
/// and the `trace_explorer` bench assert.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    /// Submission token (drive sequence number or session token).
    pub token: u64,
    /// Tenant the operation was submitted for (0 is the default
    /// tenant; see [`TenantSpec`](crate::client::TenantSpec)).
    pub tenant: usize,
    /// Operation kind label (`"get"`, `"scan"`, `"append"`).
    pub kind: &'static str,
    /// Virtual instant the operation was submitted.
    pub submitted_vt: f64,
    /// Virtual instant device service began.
    pub started_vt: f64,
    /// Virtual instant the operation completed.
    pub completed_vt: f64,
    /// Completion queue (device) the operation finished on.
    pub device: usize,
    /// Total device seconds charged.
    pub device_seconds: f64,
    /// Per-charge service windows in charge order — the per-device
    /// decomposition of the op's place on the timeline.
    pub intervals: Vec<ChargeInterval>,
    /// Chunks the operation touched.
    pub chunks_touched: u64,
    /// Touched chunks served from the cache.
    pub cache_hits: u64,
    /// Touched chunks fetched and decoded.
    pub cache_misses: u64,
    /// Device commands issued.
    pub device_ops: u64,
    /// Engine-side child events (empty unless engine tracing is on).
    pub events: Vec<EngineEvent>,
}

impl OpSpan {
    /// Submit-to-completion virtual latency.
    pub fn latency(&self) -> f64 {
        self.completed_vt - self.submitted_vt
    }

    /// Virtual seconds spent queued before service began.
    pub fn queue_wait(&self) -> f64 {
        self.started_vt - self.submitted_vt
    }

    /// The operation's device charges, recovered from its service
    /// intervals — feed these back through a fresh scheduler (see
    /// [`replay`]) to reproduce the span's instants bit-for-bit.
    pub fn charges(&self) -> Vec<DeviceCharge> {
        self.intervals
            .iter()
            .map(|iv| DeviceCharge {
                device: iv.device,
                seconds: iv.seconds,
            })
            .collect()
    }
}

/// The per-dataset span sink: a mutex over an append-only ring.
///
/// Recording is one short lock hold per completed op — observation
/// only, never on the virtual timeline (the scheduler's clocks are
/// advanced before anything is recorded, through arithmetic shared
/// with the untraced path).
///
/// An unbounded buffer ([`TraceBuffer::new`]) keeps every span. A
/// bounded one ([`TraceBuffer::with_capacity`], reached through
/// [`DatasetBuilder::tracing_capacity`](crate::client::DatasetBuilder::tracing_capacity))
/// keeps the most recent `capacity` spans, evicting the **oldest** on
/// overflow and counting each eviction in [`TraceBuffer::dropped`] —
/// long open-loop runs can trace the steady state without unbounded
/// memory growth.
///
/// ```
/// use sage_store::obs::{OpSpan, TraceBuffer};
///
/// let buf = TraceBuffer::new();
/// buf.record(OpSpan {
///     token: 0,
///     tenant: 0,
///     kind: "get",
///     submitted_vt: 0.0,
///     started_vt: 0.001,
///     completed_vt: 0.003,
///     device: 0,
///     device_seconds: 0.002,
///     intervals: Vec::new(),
///     chunks_touched: 1,
///     cache_hits: 0,
///     cache_misses: 1,
///     device_ops: 1,
///     events: Vec::new(),
/// });
/// assert_eq!(buf.dropped(), 0);
/// let json = buf.to_chrome_trace();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\"") && json.contains("\"dur\":"));
/// // Load the written file in https://ui.perfetto.dev ("Open trace").
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    state: Mutex<TraceState>,
    capacity: Option<usize>,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: VecDeque<OpSpan>,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty, unbounded buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// An empty buffer bounded to the most recent `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (a zero-capacity ring would
    /// silently drop everything; callers wanting no tracing should
    /// not build a buffer at all).
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer {
            state: Mutex::new(TraceState::default()),
            capacity: Some(capacity),
        }
    }

    /// The ring bound, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.state.lock().expect("trace buffer poisoned")
    }

    /// Appends one span, evicting the oldest recorded span first when
    /// the buffer is at its ring bound.
    pub fn record(&self, span: OpSpan) {
        let mut st = self.lock();
        if let Some(cap) = self.capacity {
            while st.spans.len() >= cap {
                st.spans.pop_front();
                st.dropped += 1;
            }
        }
        st.spans.push_back(span);
    }

    /// Spans held right now (at most the capacity for a bounded
    /// buffer).
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted by the ring bound since construction (or the
    /// last [`clear`](TraceBuffer::clear); always 0 for an unbounded
    /// buffer).
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Drops every recorded span and resets the dropped-span counter.
    pub fn clear(&self) {
        let mut st = self.lock();
        st.spans.clear();
        st.dropped = 0;
    }

    /// A copy of the held spans, in recording order. For drives
    /// that serialize execution (the open-loop driver, and the
    /// closed-loop driver at `workers == 1`) recording order equals
    /// dispatch order, which is what [`replay`] requires.
    pub fn spans(&self) -> Vec<OpSpan> {
        self.lock().spans.iter().cloned().collect()
    }

    /// Renders the buffer as Chrome trace-event JSON — load the
    /// string (written to a `.json` file) in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`.
    ///
    /// See [`chrome_trace`] for the track layout.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.spans())
    }
}

/// Renders a span slice as Chrome trace-event JSON.
///
/// Track layout: each tenant gets its own process of op lanes — the
/// default tenant 0 is pid 1 ("ops"), tenant `t ≥ 1` is pid `10 + t`
/// ("tenant{t}") — holding one `"X"` complete event per operation,
/// packed onto overlap-free lanes (tids) greedily by submit instant,
/// with the engine's child events as `"i"` instants on the op's lane;
/// pid 2 ("devices") holds one `"X"` event per [`ChargeInterval`] on
/// the owning device's tid — per-device service is non-overlapping by
/// scheduler construction, so every track is well-nested. A
/// single-tenant trace therefore renders exactly as before this field
/// existed: pids 1 and 2 only. Timestamps are virtual microseconds.
pub fn chrome_trace(spans: &[OpSpan]) -> String {
    let us = |vt: f64| vt * 1e6;
    let tenant_pid = |t: usize| if t == 0 { 1 } else { 10 + t };
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .submitted_vt
            .partial_cmp(&spans[b].submitted_vt)
            .expect("finite instants")
            .then(spans[a].token.cmp(&spans[b].token))
    });
    // Greedy lane packing per tenant process: an op takes the first
    // lane of its tenant free at its submit instant, so events on one
    // lane never overlap.
    let mut tenant_lanes: std::collections::BTreeMap<usize, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2 + 2);
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"ops\"}}".into(),
    );
    events.push(
        "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"devices\"}}".into(),
    );
    let mut named: Vec<usize> = Vec::new();
    for &ix in &order {
        let s = &spans[ix];
        let pid = tenant_pid(s.tenant);
        if s.tenant != 0 && !named.contains(&s.tenant) {
            named.push(s.tenant);
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"tenant{}\"}}}}",
                s.tenant,
            ));
        }
        let lane_free = tenant_lanes.entry(s.tenant).or_default();
        let lane = match lane_free.iter().position(|&f| f <= s.submitted_vt) {
            Some(l) => l,
            None => {
                lane_free.push(0.0);
                lane_free.len() - 1
            }
        };
        lane_free[lane] = s.completed_vt;
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{lane},\"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\
             \"args\":{{\"token\":{},\"tenant\":{},\"device\":{},\"device_seconds\":{:.9},\"queue_wait_us\":{:.3},\
             \"chunks\":{},\"cache_hits\":{},\"cache_misses\":{},\"device_ops\":{}}}}}",
            s.kind,
            us(s.submitted_vt),
            us(s.latency()).max(0.0),
            s.token,
            s.tenant,
            s.device,
            s.device_seconds,
            us(s.queue_wait()).max(0.0),
            s.chunks_touched,
            s.cache_hits,
            s.cache_misses,
            s.device_ops,
        ));
        for ev in &s.events {
            events.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{lane},\"name\":\"{}\",\"ts\":{:.3},\"s\":\"t\"}}",
                ev.label(),
                us(s.started_vt),
            ));
        }
        for iv in &s.intervals {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":2,\"tid\":{},\"name\":\"service\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"args\":{{\"token\":{},\"seconds\":{:.9}}}}}",
                iv.device,
                us(iv.start_vt),
                us(iv.seconds),
                s.token,
                iv.seconds,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// Outcome of [`replay`]: how a span stream re-dispatched through a
/// fresh scheduler compares to what the trace recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Spans replayed.
    pub ops: usize,
    /// Spans whose replayed instants differed (0 for a faithful
    /// dispatch-order trace).
    pub mismatches: usize,
    /// Busy seconds per device accumulated by the replay scheduler.
    pub device_busy: Vec<f64>,
    /// The replay scheduler's final horizon.
    pub horizon: f64,
}

impl Replay {
    /// Whether every span's instants were reproduced bit-for-bit.
    pub fn exact(&self) -> bool {
        self.mismatches == 0
    }
}

/// Re-dispatches `spans` (in slice order, which must be dispatch
/// order) through a fresh [`VirtualScheduler`] over `devices`
/// devices, comparing every operation's replayed submit → start →
/// complete instants, total device seconds, and finishing device to
/// what the trace recorded — **bitwise**. A faithful trace replays
/// exactly because the replay runs the very arithmetic the original
/// dispatch ran.
pub fn replay(spans: &[OpSpan], devices: usize) -> Replay {
    let mut sched = VirtualScheduler::new(devices.max(1));
    let mut mismatches = 0usize;
    for s in spans {
        let charges = s.charges();
        let d = sched.dispatch(s.submitted_vt, &charges);
        let exact = d.started_vt == s.started_vt
            && d.completed_vt == s.completed_vt
            && d.device_seconds == s.device_seconds
            && d.device == s.device;
        if !exact {
            mismatches += 1;
        }
    }
    Replay {
        ops: spans.len(),
        mismatches,
        device_busy: sched.busy_seconds(),
        horizon: sched.horizon(),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    pub(crate) fn span(token: u64, submit: f64, intervals: Vec<ChargeInterval>) -> OpSpan {
        let started = intervals
            .iter()
            .map(|i| i.start_vt)
            .fold(f64::INFINITY, f64::min);
        let completed = intervals.iter().map(|i| i.end_vt).fold(submit, f64::max);
        let seconds: f64 = intervals.iter().map(|i| i.seconds).sum();
        let device = intervals
            .iter()
            .max_by(|a, b| a.end_vt.partial_cmp(&b.end_vt).unwrap())
            .map(|i| i.device)
            .unwrap_or(0);
        OpSpan {
            token,
            tenant: 0,
            kind: "get",
            submitted_vt: submit,
            started_vt: if started.is_finite() { started } else { submit },
            completed_vt: completed,
            device,
            device_seconds: seconds,
            intervals,
            chunks_touched: 1,
            cache_hits: 0,
            cache_misses: 1,
            device_ops: 1,
            events: Vec::new(),
        }
    }

    /// Spans dispatched through a real scheduler so instants are
    /// exactly what a drive would record.
    pub(crate) fn scheduled_spans(n: u64, devices: usize) -> Vec<OpSpan> {
        let mut sched = VirtualScheduler::new(devices);
        (0..n)
            .map(|i| {
                let submit = i as f64 * 0.01;
                let charges = [
                    DeviceCharge {
                        device: i as usize % devices,
                        seconds: 0.004 + i as f64 * 1e-4,
                    },
                    DeviceCharge {
                        device: (i as usize + 1) % devices,
                        seconds: 0.002,
                    },
                ];
                let (d, intervals) = sched.dispatch_traced(submit, &charges);
                let mut s = span(i, submit, intervals);
                s.started_vt = d.started_vt;
                s.completed_vt = d.completed_vt;
                s.device_seconds = d.device_seconds;
                s.device = d.device;
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{scheduled_spans, span};
    use super::*;

    #[test]
    fn replay_reproduces_scheduled_instants_bitwise() {
        let spans = scheduled_spans(32, 3);
        let r = replay(&spans, 3);
        assert!(r.exact(), "{} of {} spans mismatched", r.mismatches, r.ops);
        assert_eq!(r.ops, 32);
        assert!(r.device_busy.iter().all(|b| *b > 0.0));
        // Perturbing one instant is detected.
        let mut bad = spans;
        bad[7].completed_vt += 1e-9;
        assert!(!replay(&bad, 3).exact());
    }

    #[test]
    fn chrome_trace_packs_ops_onto_nonoverlapping_lanes() {
        let spans = scheduled_spans(24, 2);
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        // One X event per op plus one per charge interval.
        let n_intervals: usize = spans.iter().map(|s| s.intervals.len()).sum();
        let xs = json.matches("\"ph\":\"X\"").count();
        assert_eq!(xs, spans.len() + n_intervals);
        assert!(json.contains("\"name\":\"service\""));
        assert!(json.contains("\"name\":\"get\""));
        // Required trace-event fields are present on complete events.
        assert!(json.contains("\"ts\":") && json.contains("\"dur\":"));
    }

    #[test]
    fn chrome_trace_groups_lanes_per_tenant() {
        // Two tenants' ops interleave on the timeline; each tenant's
        // spans land on its own process, and only non-default tenants
        // get extra pids.
        let mut spans = scheduled_spans(12, 2);
        for (i, s) in spans.iter_mut().enumerate() {
            s.tenant = i % 3; // tenants 0, 1, 2
        }
        let json = chrome_trace(&spans);
        // Default tenant stays pid 1; tenants 1 and 2 get pids 11, 12
        // with process metadata.
        assert!(json.contains("\"pid\":11"));
        assert!(json.contains("\"pid\":12"));
        assert!(json.contains("\"name\":\"tenant1\""));
        assert!(json.contains("\"name\":\"tenant2\""));
        // Every op X event carries its tenant in args.
        assert_eq!(json.matches("\"tenant\":").count(), spans.len());
        // A single-tenant trace renders exactly as before the tenant
        // field existed: pids 1 and 2 only, no tenant metadata.
        let single = chrome_trace(&scheduled_spans(12, 2));
        assert!(!single.contains("\"pid\":11"));
        assert!(!single.contains("\"name\":\"tenant"));
    }

    #[test]
    fn bounded_buffer_keeps_newest_and_counts_drops() {
        let buf = TraceBuffer::with_capacity(8);
        assert_eq!(buf.capacity(), Some(8));
        for s in scheduled_spans(20, 2) {
            buf.record(s);
        }
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.dropped(), 12);
        // The ring holds the most recent spans, still in order.
        let kept = buf.spans();
        let tokens: Vec<u64> = kept.iter().map(|s| s.token).collect();
        assert_eq!(tokens, (12..20).collect::<Vec<u64>>());
        // Suffix-of-a-timeline traces replay with zero *busy* drift:
        // replaying a suffix can only disagree on queue-delayed start
        // instants, never on charges.
        let r = replay(&kept, 2);
        assert_eq!(r.ops, 8);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn unbounded_buffer_never_drops() {
        let buf = TraceBuffer::new();
        assert_eq!(buf.capacity(), None);
        for s in scheduled_spans(100, 2) {
            buf.record(s);
        }
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.dropped(), 0);
        // Recording order is preserved exactly.
        let spans = buf.spans();
        assert!(spans.windows(2).all(|w| w[0].token < w[1].token));
    }

    #[test]
    fn span_helper_round_trips_charges() {
        let mut sched = VirtualScheduler::new(2);
        let (_, intervals) = sched.dispatch_traced(
            0.5,
            &[
                DeviceCharge {
                    device: 0,
                    seconds: 0.25,
                },
                DeviceCharge {
                    device: 1,
                    seconds: 0.125,
                },
            ],
        );
        let s = span(0, 0.5, intervals);
        let charges = s.charges();
        assert_eq!(charges.len(), 2);
        assert_eq!(charges[0].seconds, 0.25);
        assert_eq!(s.latency(), s.completed_vt - s.submitted_vt);
    }
}
