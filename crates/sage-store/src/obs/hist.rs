//! The log-bucketed latency histogram shared by every drive report.

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per octave,
/// bounding the relative quantization error of any representative
/// value to `1/(2·64)` ≈ 0.78%.
const SUB_BITS: u32 = 6;
const SUBS: usize = 1 << SUB_BITS;
/// Smallest tracked octave: `2^-40` s ≈ 0.9 ps — far below any
/// virtual latency the device models produce.
const MIN_EXP: i32 = -40;
/// Largest tracked octave: values up to `2^21` s ≈ 24 virtual days.
const MAX_EXP: i32 = 20;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// A log-bucketed histogram of non-negative samples (seconds).
///
/// Buckets are base-2 octaves split into 64 linear
/// sub-buckets, so any quantile is answered within ≈0.78% relative
/// error at O(1) memory regardless of sample count. `count`, `sum`,
/// `min`, and `max` are tracked **exactly** (the mean never
/// quantizes, and quantiles clamp into `[min, max]`). Quantization is
/// monotone: if `a ≤ b` then every quantile of a stream recording `a`
/// sorts no higher than one recording `b`.
///
/// This is the one latency distribution behind
/// [`LatencyStats`](crate::client::LatencyStats) — both drive
/// reports aggregate through it, folding one histogram per op kind
/// into the run total with [`LogHistogram::merge`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Box<[u64]>,
    /// Samples in `[0, 2^MIN_EXP)` — effectively the zero bucket.
    underflow: u64,
    /// Samples at or above `2^(MAX_EXP+1)`.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0u64; OCTAVES * SUBS].into_boxed_slice(),
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Bucket index of a positive finite sample, or `None` when it
    /// falls outside the tracked octave range.
    fn bucket_of(v: f64) -> Option<usize> {
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if !(MIN_EXP..=MAX_EXP).contains(&exp) {
            return None;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        Some((exp - MIN_EXP) as usize * SUBS + sub)
    }

    /// The midpoint value bucket `i` stands for.
    fn representative(i: usize) -> f64 {
        let exp = MIN_EXP + (i / SUBS) as i32;
        let sub = (i % SUBS) as f64;
        2f64.powi(exp) * (1.0 + (sub + 0.5) / SUBS as f64)
    }

    /// Records one sample. Non-finite samples are dropped; negative
    /// ones land in the underflow (zero) bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        match Self::bucket_of(v) {
            Some(i) if v > 0.0 => self.counts[i] += 1,
            _ if v > 0.0 && v >= 2f64.powi(MAX_EXP + 1) => self.overflow += 1,
            _ => self.underflow += 1,
        }
    }

    /// Folds `other` into `self`: bucket counts (underflow and
    /// overflow included) add exactly, `count` and `sum` add exactly
    /// (`sum` becomes `self.sum + other.sum` in that order), and
    /// `min`/`max` take the exact envelope of both streams. After the
    /// merge every quantile answers over the combined sample as if
    /// both streams had been recorded into one histogram — this is
    /// how the drive reports fold their per-kind histograms into the
    /// run total.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (recording order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Nearest-rank quantile `p ∈ [0, 1]`, answered from the bucket
    /// representatives (≈0.78% relative error), clamped into the
    /// exact `[min, max]` envelope. 0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut cum = self.underflow;
        if rank < cum {
            return self.min();
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if rank < cum {
                return Self::representative(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(representative_value, count)` pairs
    /// in ascending value order (underflow and overflow excluded).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::representative(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    #[test]
    fn histogram_tracks_exact_moments_and_tight_quantiles() {
        let mut h = LogHistogram::new();
        let vals: Vec<f64> = (1..=5000).map(|i| i as f64 * 1e-4).collect();
        for &v in &vals {
            h.record(v);
        }
        assert_eq!(h.count(), 5000);
        let exact_sum: f64 = vals.iter().sum();
        assert_eq!(h.sum(), exact_sum); // same addition order: bitwise
        assert_eq!(h.max(), 0.5);
        assert_eq!(h.min(), 1e-4);
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let q = h.quantile(p);
            let e = exact_percentile(&vals, p);
            assert!(
                (q - e).abs() <= e * 0.01 + 1e-12,
                "p{p}: histogram {q} vs exact {e}"
            );
        }
        // Quantiles are monotone in p.
        let qs: Vec<f64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_handles_edges() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.record(0.0);
        h.record(f64::NAN); // dropped
        h.record(1e-300); // underflow octave
        h.record(1e12); // overflow octave
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e12);
        assert_eq!(h.quantile(1.0), 1e12);
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn quantization_is_monotone_across_histograms() {
        // a ≤ b pointwise ⇒ every quantile of a ≤ same quantile of b.
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 1..=500 {
            a.record(i as f64 * 1e-3);
            b.record(i as f64 * 1.37e-3);
        }
        for p in [0.5, 0.9, 0.99, 1.0] {
            assert!(a.quantile(p) <= b.quantile(p));
        }
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        // Two disjoint streams merged = one histogram fed both, in
        // the same order: every bucket, moment, and quantile agrees.
        let lo: Vec<f64> = (1..=400).map(|i| i as f64 * 3e-5).collect();
        let hi: Vec<f64> = (1..=300).map(|i| i as f64 * 2e-2).collect();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for &v in &lo {
            a.record(v);
            both.record(v);
        }
        for &v in &hi {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both); // bucketwise + exact moments, bitwise
        assert_eq!(merged.count(), 700);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), lo[0]);
        assert_eq!(merged.max(), hi[hi.len() - 1]);
        for p in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(p), both.quantile(p));
        }
    }

    #[test]
    fn merge_mixed_ranges_spanning_under_and_overflow() {
        // Mixed-range merge: one stream in the underflow/overflow
        // extremes, the other in the tracked octaves.
        let mut extremes = LogHistogram::new();
        extremes.record(0.0); // underflow
        extremes.record(1e-300); // underflow octave
        extremes.record(1e12); // overflow octave
        let mut mid = LogHistogram::new();
        mid.record(1e-3);
        mid.record(2e-3);
        let mut merged = mid.clone();
        merged.merge(&extremes);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.min(), 0.0);
        assert_eq!(merged.max(), 1e12);
        assert_eq!(merged.quantile(0.0), 0.0);
        assert_eq!(merged.quantile(1.0), 1e12);
        assert_eq!(merged.sum(), mid.sum() + extremes.sum());
        // Merge direction changes only the sum's addition order.
        let mut other_way = extremes.clone();
        other_way.merge(&mid);
        assert_eq!(other_way.count(), merged.count());
        assert_eq!(other_way.min(), merged.min());
        assert_eq!(other_way.max(), merged.max());
        assert_eq!(other_way.quantile(0.5), merged.quantile(0.5));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record(5e-4);
        h.record(7e-4);
        let before = h.clone();
        h.merge(&LogHistogram::new()); // empty rhs: nothing changes
        assert_eq!(h, before);
        let mut empty = LogHistogram::new();
        empty.merge(&before); // empty lhs adopts rhs exactly
        assert_eq!(empty.count(), before.count());
        assert_eq!(empty.min(), before.min());
        assert_eq!(empty.max(), before.max());
        assert_eq!(empty.quantile(0.5), before.quantile(0.5));
    }
}
