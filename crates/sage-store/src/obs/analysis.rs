//! The analysis tier over span streams: latency blame, bottleneck
//! timelines, tail forensics, and SLO burn-rate monitors.
//!
//! Everything here is **read-only**: analysis consumes [`OpSpan`]s
//! already recorded by a drive and never touches the virtual timeline
//! (the `analysis_is_read_only` property test holds a run with
//! analysis enabled bit-identical to one without). The central
//! invariant is **blame conservation**: every operation's
//! [`LatencyBlame`] components fold back to the span's
//! submit-to-completion latency *bit-for-bit* —
//! `blame.total().to_bits() == span.latency().to_bits()` — so a blame
//! table can be summed, sliced, and diffed without ever drifting from
//! the latencies the drive reported.
//!
//! ## Blame taxonomy
//!
//! | component | meaning |
//! |-----------|---------|
//! | `queue`   | submit → first device service start (scheduler queueing) |
//! | `service` | union measure of the op's device service windows |
//! | `stall`   | residual inside the service envelope: same-device serialization gaps between the op's own charges, plus f64 rounding of the fold |
//! | `decode`  | host decode time — exactly `0.0` under the device-only virtual cost model (the *count* of decodes is still carried and drives the decode-bound classifier via [`AnalysisSpec::decode_secs_per_chunk`]) |
//! | `probe`   | cache-probe time — exactly `0.0` under the device-only model (probe count carried) |

use super::{MetricsRecorder, OpSpan, WindowSeries};

// ---------------------------------------------------------------------
// Per-op latency blame
// ---------------------------------------------------------------------

/// Returns `r` such that `partial + r` reproduces `target`
/// **bitwise**. Starts from the floating-point difference and walks
/// by ulps — `target` and `partial` agree to within a few ulps here
/// (the service union lives inside the latency envelope), so the walk
/// terminates in a handful of steps; it is bounded regardless.
fn exact_residual(target: f64, partial: f64) -> f64 {
    let mut r = target - partial;
    for _ in 0..128 {
        let got = partial + r;
        if got.to_bits() == target.to_bits() {
            return r;
        }
        r = if got < target {
            r.next_up()
        } else {
            r.next_down()
        };
    }
    r
}

/// The measure of the union of the op's service windows: overlapping
/// windows (charges to distinct devices run in parallel) count once.
fn service_union(span: &OpSpan) -> f64 {
    let mut windows: Vec<(f64, f64)> = span
        .intervals
        .iter()
        .filter(|iv| iv.end_vt > iv.start_vt)
        .map(|iv| (iv.start_vt, iv.end_vt))
        .collect();
    if windows.is_empty() {
        return 0.0;
    }
    windows.sort_by(|a, b| a.partial_cmp(b).expect("finite instants"));
    let mut total = 0.0;
    let (mut cur_start, mut cur_end) = windows[0];
    for &(s, e) in &windows[1..] {
        if s <= cur_end {
            cur_end = cur_end.max(e);
        } else {
            total += cur_end - cur_start;
            (cur_start, cur_end) = (s, e);
        }
    }
    total + (cur_end - cur_start)
}

/// One operation's latency split into blame components.
///
/// Conservation invariant: [`total()`](LatencyBlame::total) — the
/// left fold `queue + service + stall + decode + probe` — equals
/// [`OpSpan::latency`] **bitwise**. `stall` is constructed as the
/// exact residual making that hold (it is physically the
/// same-device serialization gap between the op's own charges, and
/// numerically it also absorbs the sub-ulp rounding of the fold), so
/// the invariant holds by construction for every span, on every
/// platform.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBlame {
    /// Submission token of the blamed op.
    pub token: u64,
    /// Operation kind label.
    pub kind: &'static str,
    /// The span's submit-to-completion latency.
    pub latency: f64,
    /// Seconds queued before any device began service.
    pub queue: f64,
    /// Union measure of the op's device service windows.
    pub service: f64,
    /// Residual inside the service envelope (see type docs).
    pub stall: f64,
    /// Host decode seconds — exactly `0.0` under the device-only
    /// virtual cost model.
    pub decode: f64,
    /// Cache-probe seconds — exactly `0.0` under the device-only
    /// virtual cost model.
    pub probe: f64,
    /// Exact device seconds charged per device (can sum past
    /// `service` when charges to distinct devices overlapped).
    pub per_device: Vec<f64>,
    /// Chunks decoded (cache misses) — drives the decode-bound
    /// classifier.
    pub decodes: u64,
    /// Cache probes issued (chunks touched).
    pub probes: u64,
}

impl LatencyBlame {
    /// Decomposes one span over `devices` devices.
    pub fn of(span: &OpSpan, devices: usize) -> LatencyBlame {
        let latency = span.latency();
        let queue = span.queue_wait();
        let service = service_union(span);
        let stall = exact_residual(latency, queue + service);
        let mut per_device = vec![0.0f64; devices.max(1)];
        for iv in &span.intervals {
            let d = iv.device.min(per_device.len() - 1);
            per_device[d] += iv.seconds;
        }
        LatencyBlame {
            token: span.token,
            kind: span.kind,
            latency,
            queue,
            service,
            stall,
            decode: 0.0,
            probe: 0.0,
            per_device,
            decodes: span.cache_misses,
            probes: span.chunks_touched,
        }
    }

    /// The conservation fold: `queue + service + stall + decode +
    /// probe`, left to right — reproduces the span's latency bitwise.
    pub fn total(&self) -> f64 {
        (((self.queue + self.service) + self.stall) + self.decode) + self.probe
    }
}

// ---------------------------------------------------------------------
// Bottleneck timeline
// ---------------------------------------------------------------------

/// What analysis should assume about the run — all knobs are
/// analysis-side only and never touch the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisSpec {
    /// Window width for the bottleneck timeline, virtual seconds.
    pub window_secs: f64,
    /// Estimated host seconds to decode one chunk — feeds the
    /// decode-bound classifier (`0.0`, the default, matches the
    /// device-only virtual cost model and makes decode-bound
    /// unreachable).
    pub decode_secs_per_chunk: f64,
    /// A window with no completions whose peak device utilization is
    /// at or below this fraction is labeled idle.
    pub idle_utilization: f64,
}

impl Default for AnalysisSpec {
    fn default() -> AnalysisSpec {
        AnalysisSpec {
            window_secs: 0.05,
            decode_secs_per_chunk: 0.0,
            idle_utilization: 0.01,
        }
    }
}

impl AnalysisSpec {
    /// The default spec with a different window width.
    pub fn with_window(window_secs: f64) -> AnalysisSpec {
        AnalysisSpec {
            window_secs,
            ..AnalysisSpec::default()
        }
    }
}

/// The label the windowed classifier assigns each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Nothing completed and no device was meaningfully busy.
    Idle,
    /// Service dominates: ops were mostly *being served*.
    DeviceBound,
    /// Queueing dominates: ops mostly waited for devices.
    QueueBound,
    /// Estimated decode cost exceeds both queue and service blame.
    DecodeBound,
}

impl Bottleneck {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::Idle => "idle",
            Bottleneck::DeviceBound => "device_bound",
            Bottleneck::QueueBound => "queue_bound",
            Bottleneck::DecodeBound => "decode_bound",
        }
    }
}

/// One window of the bottleneck timeline: the blame of the ops
/// completing in it, plus the label the classifier assigned.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBlame {
    /// Window start instant, virtual seconds.
    pub start_vt: f64,
    /// Queue + stall blame of the ops completing in the window.
    pub queue_secs: f64,
    /// Service blame of the ops completing in the window.
    pub service_secs: f64,
    /// Estimated decode seconds (`decodes ×
    /// [`AnalysisSpec::decode_secs_per_chunk`]`).
    pub decode_est_secs: f64,
    /// Chunks decoded by the ops completing in the window.
    pub decodes: u64,
    /// The classifier's label.
    pub label: Bottleneck,
}

/// Run-level blame sums, folded in span order.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlameTotals {
    /// Sum of per-op latencies.
    pub latency: f64,
    /// Sum of queue blame.
    pub queue: f64,
    /// Sum of service blame.
    pub service: f64,
    /// Sum of stall blame.
    pub stall: f64,
    /// Sum of estimated decode seconds.
    pub decode_est: f64,
}

/// The run-level answer [`analyze`] produces: per-op blame, the
/// windowed bottleneck timeline, and run totals — everything needed
/// to say *why* a run's latency is what it is.
///
/// The timeline's busy integrals come from the same
/// [`MetricsRecorder`] sampling the rest of the stack uses, so
/// [`BlameReport::device_busy`] sums back to the scheduler's
/// per-device busy seconds.
///
/// ```
/// use sage_store::obs::analysis::{analyze, AnalysisSpec};
/// use sage_store::obs::OpSpan;
///
/// let spans = vec![OpSpan {
///     token: 0,
///     tenant: 0,
///     kind: "get",
///     submitted_vt: 0.0,
///     started_vt: 0.010,
///     completed_vt: 0.010, // fully cached: pure queue wait
///     device: 0,
///     device_seconds: 0.0,
///     intervals: Vec::new(),
///     chunks_touched: 2,
///     cache_hits: 2,
///     cache_misses: 0,
///     device_ops: 0,
///     events: Vec::new(),
/// }];
/// let report = analyze(&spans, 1, &AnalysisSpec::default());
/// assert_eq!(report.ops, 1);
/// // Conservation: blame components fold back to the latency bitwise.
/// let b = &report.blames[0];
/// assert_eq!(b.total().to_bits(), spans[0].latency().to_bits());
/// assert_eq!(b.queue, 0.010);
/// assert_eq!(b.service, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// Devices the run was analyzed over.
    pub devices: usize,
    /// Operations analyzed.
    pub ops: usize,
    /// Per-op blame, in span order.
    pub blames: Vec<LatencyBlame>,
    /// The windowed curves backing the timeline (busy, queue depth,
    /// completions, hit rate).
    pub series: WindowSeries,
    /// The bottleneck timeline, one entry per window.
    pub windows: Vec<WindowBlame>,
    /// Run-level blame sums.
    pub totals: BlameTotals,
}

impl BlameReport {
    /// Window counts per label, indexed `[idle, device_bound,
    /// queue_bound, decode_bound]`.
    pub fn label_counts(&self) -> [usize; 4] {
        let mut out = [0usize; 4];
        for w in &self.windows {
            let i = match w.label {
                Bottleneck::Idle => 0,
                Bottleneck::DeviceBound => 1,
                Bottleneck::QueueBound => 2,
                Bottleneck::DecodeBound => 3,
            };
            out[i] += 1;
        }
        out
    }

    /// The most common non-idle window label (falls back to idle when
    /// every window is idle). Ties break toward the earlier label in
    /// `[device_bound, queue_bound, decode_bound]` order.
    pub fn dominant(&self) -> Bottleneck {
        let c = self.label_counts();
        let labels = [
            Bottleneck::DeviceBound,
            Bottleneck::QueueBound,
            Bottleneck::DecodeBound,
        ];
        let mut best = Bottleneck::Idle;
        let mut best_n = 0usize;
        for (i, &l) in labels.iter().enumerate() {
            if c[i + 1] > best_n {
                best = l;
                best_n = c[i + 1];
            }
        }
        best
    }

    /// Per-device busy seconds integrated from the windowed series —
    /// agrees with the scheduler's busy totals.
    pub fn device_busy(&self) -> Vec<f64> {
        self.series.total_busy()
    }

    /// The whole run's blame aggregated into one [`BlameShares`] —
    /// the "where did the time go" answer as fractions.
    pub fn shares(&self) -> BlameShares {
        let mut shares = BlameShares::default();
        for b in &self.blames {
            shares.add(b);
        }
        shares
    }

    /// Renders the report's run-level view as one JSON object.
    pub fn to_json(&self) -> String {
        let c = self.label_counts();
        format!(
            "{{\"ops\":{},\"devices\":{},\"windows\":{},\
             \"totals\":{{\"latency\":{:.9},\"queue\":{:.9},\"service\":{:.9},\
             \"stall\":{:.9},\"decode_est\":{:.9}}},\
             \"labels\":{{\"idle\":{},\"device_bound\":{},\"queue_bound\":{},\
             \"decode_bound\":{}}},\"dominant\":\"{}\"}}",
            self.ops,
            self.devices,
            self.windows.len(),
            self.totals.latency,
            self.totals.queue,
            self.totals.service,
            self.totals.stall,
            self.totals.decode_est,
            c[0],
            c[1],
            c[2],
            c[3],
            self.dominant().label(),
        )
    }
}

/// Analyzes a span stream: per-op blame, the windowed bottleneck
/// timeline, and run totals.
///
/// The windowed busy/completions curves are produced by the same
/// [`MetricsRecorder::sample`] the rest of the stack uses, so the
/// report's busy integrals agree with the scheduler by construction.
/// Each op's blame is attributed to the window its completion instant
/// falls in.
pub fn analyze(spans: &[OpSpan], devices: usize, spec: &AnalysisSpec) -> BlameReport {
    let devices = devices.max(1);
    let blames: Vec<LatencyBlame> = spans.iter().map(|s| LatencyBlame::of(s, devices)).collect();
    let recorder = MetricsRecorder::sample_every(spec.window_secs);
    let series = recorder.sample(spans, devices);
    let nw = series.windows();
    let dt = series.dt;
    let w_of = |vt: f64| ((vt / dt) as usize).min(nw - 1);
    let mut queue = vec![0.0f64; nw];
    let mut service = vec![0.0f64; nw];
    let mut decodes = vec![0u64; nw];
    let mut totals = BlameTotals::default();
    for (s, b) in spans.iter().zip(&blames) {
        let w = w_of(s.completed_vt);
        queue[w] += b.queue + b.stall;
        service[w] += b.service;
        decodes[w] += b.decodes;
        totals.latency += b.latency;
        totals.queue += b.queue;
        totals.service += b.service;
        totals.stall += b.stall;
    }
    let mut windows = Vec::with_capacity(nw);
    for w in 0..nw {
        let decode_est = decodes[w] as f64 * spec.decode_secs_per_chunk;
        totals.decode_est += decode_est;
        let peak_busy = series.busy[w].iter().copied().fold(0.0f64, f64::max);
        let label = if series.completions[w] == 0 && peak_busy / dt <= spec.idle_utilization {
            Bottleneck::Idle
        } else if decode_est > queue[w].max(service[w]) {
            Bottleneck::DecodeBound
        } else if queue[w] > service[w] {
            Bottleneck::QueueBound
        } else {
            Bottleneck::DeviceBound
        };
        windows.push(WindowBlame {
            start_vt: w as f64 * dt,
            queue_secs: queue[w],
            service_secs: service[w],
            decode_est_secs: decode_est,
            decodes: decodes[w],
            label,
        });
    }
    BlameReport {
        devices,
        ops: spans.len(),
        blames,
        series,
        windows,
        totals,
    }
}

/// [`analyze`] restricted to one tenant's spans — the per-tenant view
/// of a multi-tenant trace (see
/// [`OpSpan::tenant`](crate::obs::OpSpan::tenant)). The filtered
/// stream keeps its original order, so a single-tenant trace filtered
/// to tenant 0 reproduces the unfiltered report exactly.
pub fn analyze_tenant(
    spans: &[OpSpan],
    devices: usize,
    spec: &AnalysisSpec,
    tenant: usize,
) -> BlameReport {
    let filtered: Vec<OpSpan> = spans
        .iter()
        .filter(|s| s.tenant == tenant)
        .cloned()
        .collect();
    analyze(&filtered, devices, spec)
}

// ---------------------------------------------------------------------
// Tail forensics
// ---------------------------------------------------------------------

/// Aggregated blame over a set of ops, with share accessors — the
/// body-vs-tail comparison unit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlameShares {
    /// Ops aggregated.
    pub ops: usize,
    /// Summed queue blame.
    pub queue: f64,
    /// Summed service blame.
    pub service: f64,
    /// Summed stall blame.
    pub stall: f64,
}

impl BlameShares {
    fn add(&mut self, b: &LatencyBlame) {
        self.ops += 1;
        self.queue += b.queue;
        self.service += b.service;
        self.stall += b.stall;
    }

    fn total(&self) -> f64 {
        self.queue + self.service + self.stall
    }

    /// Queue fraction of the aggregated blame (0 when empty).
    pub fn queue_share(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.queue / t
        }
    }

    /// Service fraction of the aggregated blame (0 when empty).
    pub fn service_share(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.service / t
        }
    }

    /// Stall fraction of the aggregated blame (0 when empty).
    pub fn stall_share(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.stall / t
        }
    }
}

/// Tail forensics for one op kind: the worst exemplars plus a
/// median-vs-p99 blame diff saying *why* the tail differs from the
/// body.
#[derive(Debug, Clone, PartialEq)]
pub struct TailReport {
    /// Op kind the report covers.
    pub kind: &'static str,
    /// The top-k worst ops by latency (descending; token breaks
    /// ties), full blame attached.
    pub exemplars: Vec<LatencyBlame>,
    /// Aggregated blame of the body: ops at or below the median
    /// latency.
    pub body: BlameShares,
    /// Aggregated blame of the tail: ops at or above the p99 latency.
    pub tail: BlameShares,
    /// Why the tail differs: the component whose blame share grew
    /// most from body to tail, as a formatted sentence.
    pub verdict: String,
}

fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs tail forensics per op kind over a span stream.
///
/// Kinds are reported in fixed `get`, `scan`, `append` order (then
/// any other labels in first-appearance order), each with its top-`k`
/// worst exemplars and the body-vs-tail blame diff. Fully
/// deterministic: same spans, same report.
pub fn tail_forensics(spans: &[OpSpan], devices: usize, k: usize) -> Vec<TailReport> {
    let mut kinds: Vec<&'static str> = Vec::new();
    for known in ["get", "scan", "append"] {
        if spans.iter().any(|s| s.kind == known) {
            kinds.push(known);
        }
    }
    for s in spans {
        if !kinds.contains(&s.kind) {
            kinds.push(s.kind);
        }
    }
    kinds
        .into_iter()
        .map(|kind| {
            let blames: Vec<LatencyBlame> = spans
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| LatencyBlame::of(s, devices))
                .collect();
            let mut lat: Vec<f64> = blames.iter().map(|b| b.latency).collect();
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let p50 = nearest_rank(&lat, 0.50);
            let p99 = nearest_rank(&lat, 0.99);
            let mut body = BlameShares::default();
            let mut tail = BlameShares::default();
            for b in &blames {
                if b.latency <= p50 {
                    body.add(b);
                }
                if b.latency >= p99 {
                    tail.add(b);
                }
            }
            let mut exemplars = blames;
            exemplars.sort_by(|a, b| {
                b.latency
                    .partial_cmp(&a.latency)
                    .expect("finite latencies")
                    .then(a.token.cmp(&b.token))
            });
            exemplars.truncate(k);
            let verdict = verdict_for(kind, &body, &tail);
            TailReport {
                kind,
                exemplars,
                body,
                tail,
                verdict,
            }
        })
        .collect()
}

/// [`tail_forensics`] restricted to one tenant's spans — whose tail
/// is it, and why, for each op kind that tenant ran.
pub fn tail_forensics_tenant(
    spans: &[OpSpan],
    devices: usize,
    k: usize,
    tenant: usize,
) -> Vec<TailReport> {
    let filtered: Vec<OpSpan> = spans
        .iter()
        .filter(|s| s.tenant == tenant)
        .cloned()
        .collect();
    tail_forensics(&filtered, devices, k)
}

impl TailReport {
    /// Renders the report as one JSON object (exemplars carry token,
    /// latency, and the blame split).
    pub fn to_json(&self) -> String {
        let exemplars = self
            .exemplars
            .iter()
            .map(|b| {
                format!(
                    "{{\"token\":{},\"latency\":{:.9},\"queue\":{:.9},\
                     \"service\":{:.9},\"stall\":{:.9}}}",
                    b.token, b.latency, b.queue, b.service, b.stall
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let shares = |s: &BlameShares| {
            format!(
                "{{\"ops\":{},\"queue_share\":{:.6},\"service_share\":{:.6},\
                 \"stall_share\":{:.6}}}",
                s.ops,
                s.queue_share(),
                s.service_share(),
                s.stall_share()
            )
        };
        format!(
            "{{\"kind\":\"{}\",\"exemplars\":[{}],\"body\":{},\"tail\":{},\
             \"verdict\":\"{}\"}}",
            self.kind,
            exemplars,
            shares(&self.body),
            shares(&self.tail),
            self.verdict.replace('"', "'"),
        )
    }
}

fn verdict_for(kind: &str, body: &BlameShares, tail: &BlameShares) -> String {
    let deltas = [
        ("queue", tail.queue_share() - body.queue_share()),
        ("service", tail.service_share() - body.service_share()),
        ("stall", tail.stall_share() - body.stall_share()),
    ];
    let (name, delta) = deltas
        .iter()
        .fold(deltas[0], |best, &d| if d.1 > best.1 { d } else { best });
    let (b_share, t_share) = match name {
        "queue" => (body.queue_share(), tail.queue_share()),
        "service" => (body.service_share(), tail.service_share()),
        _ => (body.stall_share(), tail.stall_share()),
    };
    if delta <= 0.0 {
        format!(
            "{kind}: tail blame mix matches the body (no component's share grew); \
             the tail is simply more of the same work"
        )
    } else {
        format!(
            "{kind}: tail is {name}-driven — {name} share {:.1}% at p99+ vs {:.1}% \
             at the median (+{:.1} pts)",
            t_share * 100.0,
            b_share * 100.0,
            delta * 100.0,
        )
    }
}

// ---------------------------------------------------------------------
// SLO burn-rate monitors
// ---------------------------------------------------------------------

/// A latency SLO: "`objective` of ops complete within
/// `target_secs`", monitored as windowed burn-rate alerts on the
/// virtual timeline.
///
/// Burn rate is the window's error rate over the allowed error rate
/// (`1 - objective`): burn 1.0 consumes the error budget exactly at
/// the sustainable pace, burn ≥ [`fast_burn`](SloSpec::fast_burn)
/// pages, burn ≥ [`slow_burn`](SloSpec::slow_burn) warns. Evaluation
/// is a pure function of the span stream — same spans, same spec ⇒
/// bit-identical alert sequence.
///
/// ```
/// use sage_store::obs::analysis::{SloSeverity, SloSpec};
/// use sage_store::obs::OpSpan;
///
/// let mk = |token, completed_vt| OpSpan {
///     token,
///     tenant: 0,
///     kind: "get",
///     submitted_vt: 0.0,
///     started_vt: 0.0,
///     completed_vt,
///     device: 0,
///     device_seconds: 0.0,
///     intervals: Vec::new(),
///     chunks_touched: 1,
///     cache_hits: 1,
///     cache_misses: 0,
///     device_ops: 0,
///     events: Vec::new(),
/// };
/// // Target 5 ms at 95%: one of two ops violating burns at 10x.
/// let spec = SloSpec::new(0.005, 0.95);
/// let report = spec.evaluate(&[mk(0, 0.001), mk(1, 0.040)]);
/// assert_eq!(report.evaluated, 2);
/// assert_eq!(report.violations, 1);
/// assert_eq!(report.compliance, 0.5);
/// assert_eq!(report.alerts.len(), 1);
/// assert_eq!(report.alerts[0].severity, SloSeverity::Warn);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Latency target, virtual seconds.
    pub target_secs: f64,
    /// Fraction of ops that must meet the target, in `(0, 1)`.
    pub objective: f64,
    /// Alert evaluation window, virtual seconds.
    pub window_secs: f64,
    /// Burn rate at or above which a window pages.
    pub fast_burn: f64,
    /// Burn rate at or above which a window warns.
    pub slow_burn: f64,
}

impl SloSpec {
    /// An SLO with the conventional multi-window burn thresholds
    /// (fast 14.4×, slow 6×) and a 50 ms evaluation window.
    pub fn new(target_secs: f64, objective: f64) -> SloSpec {
        SloSpec {
            target_secs,
            objective,
            window_secs: 0.05,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }

    /// The same spec with a different evaluation window.
    pub fn with_window(self, window_secs: f64) -> SloSpec {
        SloSpec {
            window_secs,
            ..self
        }
    }

    /// The same spec with different burn thresholds.
    pub fn with_burns(self, fast_burn: f64, slow_burn: f64) -> SloSpec {
        SloSpec {
            fast_burn,
            slow_burn,
            ..self
        }
    }

    /// Evaluates the SLO over a span stream, producing the windowed
    /// burn-rate curve and the deterministic alert sequence.
    ///
    /// # Panics
    ///
    /// Panics when the spec is malformed: non-positive/non-finite
    /// target or window, objective outside `(0, 1)`, or burn
    /// thresholds that are non-positive or inverted
    /// (`fast_burn < slow_burn`).
    pub fn evaluate(&self, spans: &[OpSpan]) -> SloReport {
        assert!(
            self.target_secs.is_finite() && self.target_secs > 0.0,
            "SLO target must be positive and finite"
        );
        assert!(
            self.objective > 0.0 && self.objective < 1.0,
            "SLO objective must lie strictly between 0 and 1"
        );
        assert!(
            self.window_secs.is_finite() && self.window_secs > 0.0,
            "SLO window must be positive and finite"
        );
        assert!(
            self.slow_burn > 0.0 && self.fast_burn >= self.slow_burn,
            "burn thresholds must be positive with fast >= slow"
        );
        let horizon = spans.iter().map(|s| s.completed_vt).fold(0.0f64, f64::max);
        let nw = ((horizon / self.window_secs).ceil() as usize).max(1);
        let w_of = |vt: f64| ((vt / self.window_secs) as usize).min(nw - 1);
        let mut completions = vec![0u64; nw];
        let mut violations_w = vec![0u64; nw];
        let mut violations = 0u64;
        for s in spans {
            let w = w_of(s.completed_vt);
            completions[w] += 1;
            if s.latency() > self.target_secs {
                violations_w[w] += 1;
                violations += 1;
            }
        }
        let allowed = 1.0 - self.objective;
        let mut burn = Vec::with_capacity(nw);
        let mut alerts = Vec::new();
        for w in 0..nw {
            let rate = if completions[w] == 0 {
                0.0
            } else {
                violations_w[w] as f64 / completions[w] as f64
            };
            let b = rate / allowed;
            if b >= self.slow_burn {
                alerts.push(SloAlert {
                    window: w,
                    start_vt: w as f64 * self.window_secs,
                    burn_rate: b,
                    severity: if b >= self.fast_burn {
                        SloSeverity::Page
                    } else {
                        SloSeverity::Warn
                    },
                });
            }
            burn.push(b);
        }
        let evaluated = spans.len();
        let compliance = if evaluated == 0 {
            1.0
        } else {
            1.0 - violations as f64 / evaluated as f64
        };
        let budget_consumed = if evaluated == 0 {
            0.0
        } else {
            (violations as f64 / evaluated as f64) / allowed
        };
        SloReport {
            spec: *self,
            evaluated,
            violations,
            compliance,
            budget_consumed,
            burn,
            alerts,
        }
    }

    /// [`SloSpec::evaluate`] restricted to one tenant's spans — each
    /// tenant's SLO is judged on its own operations only, which is
    /// how a per-tenant [`TenantSpec::slo`](crate::client::TenantSpec)
    /// is scored after a multi-tenant drive.
    ///
    /// # Panics
    ///
    /// Same as [`SloSpec::evaluate`].
    pub fn evaluate_tenant(&self, spans: &[OpSpan], tenant: usize) -> SloReport {
        let filtered: Vec<OpSpan> = spans
            .iter()
            .filter(|s| s.tenant == tenant)
            .cloned()
            .collect();
        self.evaluate(&filtered)
    }
}

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloSeverity {
    /// Burn at or above the slow threshold.
    Warn,
    /// Burn at or above the fast threshold.
    Page,
}

impl SloSeverity {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SloSeverity::Warn => "warn",
            SloSeverity::Page => "page",
        }
    }
}

/// One window whose burn rate crossed an alert threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAlert {
    /// Window index.
    pub window: usize,
    /// Window start instant, virtual seconds.
    pub start_vt: f64,
    /// The window's burn rate.
    pub burn_rate: f64,
    /// Crossed threshold.
    pub severity: SloSeverity,
}

/// Outcome of [`SloSpec::evaluate`] over one span stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The evaluated spec.
    pub spec: SloSpec,
    /// Ops evaluated.
    pub evaluated: usize,
    /// Ops whose latency exceeded the target.
    pub violations: u64,
    /// Fraction of ops meeting the target (1.0 when nothing ran).
    pub compliance: f64,
    /// Fraction of the run's error budget consumed (1.0 = exactly at
    /// the objective).
    pub budget_consumed: f64,
    /// Per-window burn rate.
    pub burn: Vec<f64>,
    /// Windows that crossed an alert threshold, in timeline order.
    pub alerts: Vec<SloAlert>,
}

impl SloReport {
    /// Whether the run met the objective overall.
    pub fn met(&self) -> bool {
        self.compliance >= self.spec.objective
    }

    /// Pages in the alert sequence.
    pub fn pages(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.severity == SloSeverity::Page)
            .count()
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let alerts = self
            .alerts
            .iter()
            .map(|a| {
                format!(
                    "{{\"window\":{},\"start_vt\":{:.9},\"burn_rate\":{:.6},\
                     \"severity\":\"{}\"}}",
                    a.window,
                    a.start_vt,
                    a.burn_rate,
                    a.severity.label()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"target_secs\":{:.9},\"objective\":{:.6},\"window_secs\":{:.9},\
             \"evaluated\":{},\"violations\":{},\"compliance\":{:.6},\
             \"budget_consumed\":{:.6},\"met\":{},\"alerts\":[{}]}}",
            self.spec.target_secs,
            self.spec.objective,
            self.spec.window_secs,
            self.evaluated,
            self.violations,
            self.compliance,
            self.budget_consumed,
            self.met(),
            alerts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::scheduled_spans;
    use super::*;
    use sage_io::{DeviceCharge, VirtualScheduler};

    #[test]
    fn blame_conserves_latency_bitwise_on_scheduled_spans() {
        let spans = scheduled_spans(64, 3);
        for s in &spans {
            let b = LatencyBlame::of(s, 3);
            assert_eq!(
                b.total().to_bits(),
                s.latency().to_bits(),
                "op {}: blame {:?} does not fold to latency {}",
                s.token,
                b,
                s.latency()
            );
            assert!(b.queue >= 0.0 && b.service >= 0.0);
            assert_eq!(b.decode, 0.0);
            assert_eq!(b.probe, 0.0);
            // Per-device seconds sum to the span's charged seconds.
            let per_dev: f64 = b.per_device.iter().sum();
            assert!((per_dev - s.device_seconds).abs() <= s.device_seconds * 1e-12);
        }
    }

    #[test]
    fn exact_residual_survives_adversarial_rounding() {
        // Values engineered so target - partial rounds away from the
        // exact residual; the ulp walk must still converge.
        let cases = [
            (0.1 + 0.2, 0.3),
            (1.0 / 3.0, 0.333_333_333_333),
            (1e-9, 1e-9 - 1e-25),
            (7.3, 7.3),
            (5e-3, 0.0),
            (1.0000000000000002, 1.0),
        ];
        for (target, partial) in cases {
            let r = exact_residual(target, partial);
            assert_eq!(
                (partial + r).to_bits(),
                target.to_bits(),
                "target {target} partial {partial}"
            );
        }
    }

    #[test]
    fn service_union_counts_overlap_once() {
        // Two parallel charges on distinct devices: the union is one
        // window, not the sum of both.
        let mut sched = VirtualScheduler::new(2);
        let (d, intervals) = sched.dispatch_traced(
            0.0,
            &[
                DeviceCharge {
                    device: 0,
                    seconds: 0.4,
                },
                DeviceCharge {
                    device: 1,
                    seconds: 0.3,
                },
            ],
        );
        let s = super::super::test_support::span(0, 0.0, intervals);
        assert_eq!(d.device_seconds, 0.7);
        assert_eq!(service_union(&s), 0.4); // parallel: union = max
        let b = LatencyBlame::of(&s, 2);
        assert_eq!(b.per_device, vec![0.4, 0.3]);
        assert_eq!(b.total().to_bits(), s.latency().to_bits());
    }

    #[test]
    fn stall_captures_same_device_serialization_gaps() {
        // One op, two charges on the same device: they serialize, so
        // the union covers both back-to-back and stall stays ~0; but
        // an op whose charges are split by another op's service shows
        // the gap as stall.
        let mut sched = VirtualScheduler::new(1);
        let (_, iv_a1) = sched.dispatch_traced(
            0.0,
            &[DeviceCharge {
                device: 0,
                seconds: 0.1,
            }],
        );
        // Op B submits now but its charge queues behind A's second
        // charge issued below? Build instead: op with two charges
        // recorded around a foreign charge.
        let (_, iv_other) = sched.dispatch_traced(
            0.0,
            &[DeviceCharge {
                device: 0,
                seconds: 0.2,
            }],
        );
        let (_, iv_a2) = sched.dispatch_traced(
            0.0,
            &[DeviceCharge {
                device: 0,
                seconds: 0.1,
            }],
        );
        let _ = iv_other;
        let mut intervals = iv_a1;
        intervals.extend(iv_a2);
        // Span submitted at 0, served 0.0-0.1 and 0.3-0.4: latency
        // 0.4, queue 0, service union 0.2, stall = the 0.2 gap.
        let mut s = super::super::test_support::span(0, 0.0, intervals);
        s.started_vt = 0.0;
        s.completed_vt = 0.4;
        let b = LatencyBlame::of(&s, 1);
        assert_eq!(b.queue, 0.0);
        assert!((b.service - 0.2).abs() < 1e-12);
        assert!((b.stall - 0.2).abs() < 1e-12);
        assert_eq!(b.total().to_bits(), s.latency().to_bits());
    }

    #[test]
    fn analyze_builds_consistent_timeline() {
        let spans = scheduled_spans(48, 2);
        let spec = AnalysisSpec::with_window(0.0137);
        let report = analyze(&spans, 2, &spec);
        assert_eq!(report.ops, 48);
        assert_eq!(report.windows.len(), report.series.windows());
        assert_eq!(
            report.label_counts().iter().sum::<usize>(),
            report.windows.len()
        );
        // Busy integrals agree with a fresh scheduler run.
        let mut sched = VirtualScheduler::new(2);
        for s in &spans {
            sched.dispatch(s.submitted_vt, &s.charges());
        }
        for (d, b) in sched.busy_seconds().iter().enumerate() {
            let got = report.device_busy()[d];
            assert!((got - b).abs() <= b.abs() * 1e-12 + 1e-15);
        }
        // Totals are the fold of per-op blame.
        let q: f64 = report.blames.iter().map(|b| b.queue).sum();
        assert_eq!(report.totals.queue, q);
        let json = report.to_json();
        assert!(json.contains("\"dominant\"") && json.contains("\"labels\""));
    }

    #[test]
    fn idle_windows_are_labeled_idle() {
        // Two bursts separated by a long quiet gap.
        let mut sched = VirtualScheduler::new(1);
        let mut spans = Vec::new();
        for (i, submit) in [0.0, 0.001, 10.0, 10.001].iter().enumerate() {
            let (d, intervals) = sched.dispatch_traced(
                *submit,
                &[DeviceCharge {
                    device: 0,
                    seconds: 0.002,
                }],
            );
            let mut s = super::super::test_support::span(i as u64, *submit, intervals);
            s.started_vt = d.started_vt;
            s.completed_vt = d.completed_vt;
            spans.push(s);
        }
        let report = analyze(&spans, 1, &AnalysisSpec::with_window(0.5));
        let c = report.label_counts();
        assert!(c[0] >= 15, "expected a long idle stretch, got {c:?}");
        assert_ne!(report.windows[0].label, Bottleneck::Idle);
    }

    #[test]
    fn decode_bound_requires_a_decode_cost_model() {
        let spans = scheduled_spans(32, 2);
        let base = analyze(&spans, 2, &AnalysisSpec::with_window(0.02));
        // Default model: decode cost 0 — decode-bound unreachable.
        assert_eq!(base.label_counts()[3], 0);
        // A huge per-chunk decode estimate flips busy windows.
        let spec = AnalysisSpec {
            window_secs: 0.02,
            decode_secs_per_chunk: 10.0,
            idle_utilization: 0.01,
        };
        let heavy = analyze(&spans, 2, &spec);
        assert!(heavy.label_counts()[3] > 0);
        assert_eq!(heavy.dominant(), Bottleneck::DecodeBound);
    }

    #[test]
    fn tail_forensics_ranks_exemplars_and_issues_verdict() {
        let spans = scheduled_spans(64, 2);
        let reports = tail_forensics(&spans, 2, 5);
        assert_eq!(reports.len(), 1); // helper spans are all "get"
        let r = &reports[0];
        assert_eq!(r.kind, "get");
        assert_eq!(r.exemplars.len(), 5);
        assert!(r.exemplars.windows(2).all(|w| w[0].latency >= w[1].latency));
        assert!(r.body.ops > 0 && r.tail.ops > 0);
        assert!(!r.verdict.is_empty());
        // Determinism: same spans, same report.
        assert_eq!(tail_forensics(&spans, 2, 5), reports);
    }

    #[test]
    fn slo_alerts_fire_deterministically() {
        let spans = scheduled_spans(64, 1); // 1 device: heavy queueing
        let spec = SloSpec::new(0.01, 0.95)
            .with_window(0.05)
            .with_burns(10.0, 2.0);
        let a = spec.evaluate(&spans);
        let b = spec.evaluate(&spans);
        assert_eq!(a, b); // bit-reproducible
        assert!(a.violations > 0);
        assert!(!a.alerts.is_empty());
        assert!(a.compliance < 1.0);
        assert!(a.alerts.windows(2).all(|w| w[0].window < w[1].window));
        // A generous target produces a clean report.
        let clean = SloSpec::new(100.0, 0.95).evaluate(&spans);
        assert_eq!(clean.violations, 0);
        assert!(clean.met() && clean.alerts.is_empty());
        assert_eq!(clean.compliance, 1.0);
        let json = a.to_json();
        assert!(json.contains("\"alerts\"") && json.contains("\"burn_rate\""));
    }

    #[test]
    fn slo_empty_stream_is_vacuously_met() {
        let r = SloSpec::new(0.01, 0.99).evaluate(&[]);
        assert_eq!(r.evaluated, 0);
        assert_eq!(r.compliance, 1.0);
        assert!(r.met() && r.alerts.is_empty());
    }
}
