//! Parallel chunk codec: read sets ⇄ sharded containers.
//!
//! Encoding splits a read set into fixed-population chunks and
//! compresses each chunk as an independent archive; decoding is the
//! reverse. Both fan the per-chunk work out over a `std::thread`
//! worker pool pulling jobs from one shared queue — workers that
//! finish early steal the remaining jobs, so skewed chunk costs (the
//! mapper's work varies with read content) do not idle the pool.

use crate::manifest::StoreManifest;
use crate::{parse_chunk, Result, StoreError};
use sage_core::{CompressOptions, Extent, OutputFormat, SageCompressor, SageDecompressor};
use sage_genomics::{Read, ReadSet};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Options for building a sharded store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Reads per chunk (the final chunk may hold fewer).
    pub reads_per_chunk: usize,
    /// Worker threads for encode/decode (0 ⇒ available parallelism).
    pub workers: usize,
    /// Codec options applied to every chunk. `store_order` is forced
    /// on: chunks must restore their reads in dataset order for
    /// read-id addressing to mean anything.
    pub codec: CompressOptions,
}

impl StoreOptions {
    /// Options with `reads_per_chunk` and defaults everywhere else.
    pub fn new(reads_per_chunk: usize) -> StoreOptions {
        StoreOptions {
            reads_per_chunk,
            workers: 0,
            codec: CompressOptions::default(),
        }
    }

    /// Sets the worker-pool width.
    pub fn with_workers(mut self, workers: usize) -> StoreOptions {
        self.workers = workers;
        self
    }

    /// Effective worker count.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        default_workers()
    }

    /// The per-chunk compressor (order-preserving).
    pub(crate) fn compressor(&self) -> SageCompressor {
        order_preserving_compressor(&self.codec)
    }
}

/// A compressor for store chunks: whatever `codec` says, plus
/// `store_order` forced on — chunks must restore their reads in
/// dataset order for read-id addressing to mean anything.
pub(crate) fn order_preserving_compressor(codec: &CompressOptions) -> SageCompressor {
    let mut codec = codec.clone();
    codec.store_order = true;
    SageCompressor::with_options(codec)
}

/// A sharded dataset: one blob of concatenated chunk archives plus
/// the manifest indexing it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedStore {
    /// The chunk index.
    pub manifest: StoreManifest,
    /// Concatenated serialized archives.
    pub blob: Vec<u8>,
}

impl ShardedStore {
    /// Splices one encoded chunk onto the end of the blob, recording
    /// it in the manifest. The single splice path shared by
    /// [`encode_sharded`] and the engine's append, so extent placement
    /// can never diverge between the two.
    pub(crate) fn splice_chunk(&mut self, n_reads: u64, bytes: &[u8]) {
        let extent = Extent {
            offset: self.blob.len(),
            len: bytes.len(),
        };
        self.blob.extend_from_slice(bytes);
        self.manifest.push_chunk(n_reads, extent);
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.manifest.chunks.len()
    }

    /// Total reads stored.
    pub fn total_reads(&self) -> u64 {
        self.manifest.total_reads()
    }
}

/// Default pool width when the caller does not pin one.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Runs `jobs` closures over a shared queue drained by `workers`
/// threads, collecting per-job results in order. The queue is a single
/// deque all workers pop from — a finished worker immediately takes
/// the next pending job wherever it is, which is the work-stealing
/// behavior that keeps skewed chunk costs from idling the pool.
pub(crate) fn run_pool<T: Send, F: Fn(usize) -> T + Sync>(
    n_jobs: usize,
    workers: usize,
    job: F,
) -> Vec<T> {
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n_jobs).collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let workers = workers.max(1).min(n_jobs.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some(i) = queue.lock().expect("queue poisoned").pop_front() else {
                    break;
                };
                *slots[i].lock().expect("slot poisoned") = Some(job(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("job ran"))
        .collect()
}

/// Compresses pre-split chunks over the worker pool, returning each
/// chunk's serialized archive in order. Shared by [`encode_sharded`]
/// and the engine's append path so the two can never diverge.
pub(crate) fn encode_chunks(
    chunks: &[&[Read]],
    compressor: &SageCompressor,
    workers: usize,
) -> Result<Vec<Vec<u8>>> {
    run_pool(chunks.len(), workers, |i| {
        Ok(compressor
            .compress(&ReadSet::from_reads(chunks[i].to_vec()))?
            .to_bytes())
    })
    .into_iter()
    .collect()
}

/// Encodes a read set into a sharded container.
///
/// Chunks are compressed in parallel (see [`StoreOptions::workers`])
/// and concatenated in read order; the manifest records each chunk's
/// read span and byte extent.
///
/// # Errors
///
/// Propagates the first per-chunk codec failure.
///
/// # Panics
///
/// Panics if `opts.reads_per_chunk` is 0.
pub fn encode_sharded(reads: &ReadSet, opts: &StoreOptions) -> Result<ShardedStore> {
    assert!(
        opts.reads_per_chunk > 0,
        "chunks must hold at least one read"
    );
    let chunks: Vec<&[Read]> = reads.reads().chunks(opts.reads_per_chunk).collect();
    let encoded = encode_chunks(&chunks, &opts.compressor(), opts.effective_workers())?;

    let mut store = ShardedStore {
        manifest: StoreManifest {
            reads_per_chunk: opts.reads_per_chunk as u64,
            chunks: std::sync::Arc::new(Vec::with_capacity(chunks.len())),
        },
        blob: Vec::new(),
    };
    for (chunk, bytes) in chunks.iter().zip(encoded) {
        store.splice_chunk(chunk.len() as u64, &bytes);
    }
    Ok(store)
}

/// Decodes every chunk of a sharded container back into one read set,
/// in dataset order, using `workers` threads over the shared queue.
///
/// # Errors
///
/// Returns [`StoreError::CorruptChunk`] naming the first chunk that
/// fails validation or decoding.
pub fn decode_all(store: &ShardedStore, workers: usize) -> Result<ReadSet> {
    let decoder = SageDecompressor::new(OutputFormat::Ascii);
    let decoded: Vec<Result<ReadSet>> = run_pool(store.n_chunks(), workers.max(1), |i| {
        let meta = store.manifest.chunks[i];
        let archive = parse_chunk(&store.blob, meta.extent, meta.id)?;
        decoder
            .decompress(&archive)
            .map_err(|cause| StoreError::CorruptChunk {
                chunk_id: meta.id,
                cause,
            })
    });
    let mut out = ReadSet::new();
    for rs in decoded {
        for r in rs?.reads() {
            out.push(r.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_genomics::sim::{simulate_dataset, DatasetProfile};

    fn tiny() -> ReadSet {
        simulate_dataset(&DatasetProfile::tiny_short(), 11).reads
    }

    #[test]
    fn shards_cover_all_reads_in_order() {
        let reads = tiny();
        let store = encode_sharded(&reads, &StoreOptions::new(10)).unwrap();
        assert_eq!(store.total_reads(), reads.len() as u64);
        assert_eq!(store.n_chunks(), reads.len().div_ceil(10));
        let back = decode_all(&store, 4).unwrap();
        assert_eq!(back.len(), reads.len());
        for (a, b) in reads.iter().zip(back.iter()) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.qual, b.qual);
        }
    }

    #[test]
    fn chunk_larger_than_dataset_gives_one_chunk() {
        let reads = tiny();
        let store = encode_sharded(&reads, &StoreOptions::new(reads.len() * 10)).unwrap();
        assert_eq!(store.n_chunks(), 1);
    }

    #[test]
    fn empty_dataset_encodes_to_empty_store() {
        let store = encode_sharded(&ReadSet::new(), &StoreOptions::new(8)).unwrap();
        assert_eq!(store.n_chunks(), 0);
        assert!(store.blob.is_empty());
        assert_eq!(decode_all(&store, 2).unwrap().len(), 0);
    }

    #[test]
    fn corrupting_one_chunk_names_it() {
        let reads = tiny();
        let mut store = encode_sharded(&reads, &StoreOptions::new(8)).unwrap();
        let victim = store.manifest.chunks[2];
        store.blob[victim.extent.offset] ^= 0xFF; // break chunk 2's magic
        match decode_all(&store, 2) {
            Err(StoreError::CorruptChunk { chunk_id, .. }) => assert_eq!(chunk_id, 2),
            other => panic!("expected CorruptChunk, got {other:?}"),
        }
    }

    #[test]
    fn encode_sharded_matches_core_compress_chunked() {
        let reads = tiny();
        let opts = StoreOptions::new(9);
        let store = encode_sharded(&reads, &opts).unwrap();
        let archives = opts.compressor().compress_chunked(&reads, 9).unwrap();
        assert_eq!(store.n_chunks(), archives.len());
        for (meta, archive) in store.manifest.chunks.iter().zip(&archives) {
            let blob_chunk = &store.blob[meta.extent.offset..meta.extent.end()];
            assert_eq!(blob_chunk, archive.to_bytes(), "chunk {}", meta.id);
        }
    }

    #[test]
    fn single_worker_pool_matches_parallel_pool() {
        let reads = tiny();
        let a = encode_sharded(&reads, &StoreOptions::new(7).with_workers(1)).unwrap();
        let b = encode_sharded(&reads, &StoreOptions::new(7).with_workers(8)).unwrap();
        // The codec is deterministic, so worker count cannot change
        // the bytes.
        assert_eq!(a, b);
    }
}
