//! Zero-copy read results: [`ReadView`] and [`RecordSlice`].
//!
//! The engine caches decoded chunks as `Arc<ReadSet>`s. Before this
//! module existed, every `get`/`scan` answered by *cloning* each
//! record out of the cached chunk into a fresh owned `ReadSet` — one
//! payload copy per record per request, on the hottest path in the
//! codebase. A [`ReadView`] instead pins the cached chunks (cheap
//! `Arc` clones) and describes which records of each chunk belong to
//! the answer, so resolving a request moves **no payload bytes** at
//! all. Callers that really need an owned collection opt into the
//! copy explicitly with [`ReadView::to_owned`].
//!
//! A view is a sequence of [`RecordSlice`]s, one per touched chunk:
//! a contiguous index range for `get` (ranges map to runs of records
//! inside each chunk) or a sparse index list for `scan` (whatever the
//! predicate matched). Either way the record data stays inside the
//! shared chunk; the view holds it alive for as long as the caller
//! keeps the view.

use sage_genomics::{Read, ReadSet};
use std::sync::Arc;

/// Which records of one chunk a [`RecordSlice`] selects.
#[derive(Debug, Clone)]
enum Selection {
    /// A contiguous run `[lo, hi)` of in-chunk record indices (the
    /// `get` shape).
    Range { lo: u32, hi: u32 },
    /// An explicit ascending index list (the `scan` shape — whatever
    /// the predicate matched).
    Indices(Vec<u32>),
}

/// A borrowed run of records inside one cached chunk.
///
/// The slice shares ownership of the decoded chunk (`Arc<ReadSet>`):
/// cloning a slice clones a pointer, never record payloads.
#[derive(Debug, Clone)]
pub struct RecordSlice {
    chunk: Arc<ReadSet>,
    sel: Selection,
}

impl RecordSlice {
    /// A contiguous selection `[lo, hi)` of `chunk`'s records.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or `hi` reaches past the chunk.
    pub fn range(chunk: Arc<ReadSet>, lo: usize, hi: usize) -> RecordSlice {
        assert!(lo <= hi && hi <= chunk.len(), "slice out of chunk bounds");
        RecordSlice {
            chunk,
            sel: Selection::Range {
                lo: lo as u32,
                hi: hi as u32,
            },
        }
    }

    /// A sparse selection of `chunk`'s records by ascending index.
    ///
    /// # Panics
    ///
    /// Panics when an index reaches past the chunk.
    pub fn indices(chunk: Arc<ReadSet>, indices: Vec<u32>) -> RecordSlice {
        assert!(
            indices.iter().all(|&i| (i as usize) < chunk.len()),
            "index out of chunk bounds"
        );
        RecordSlice {
            chunk,
            sel: Selection::Indices(indices),
        }
    }

    /// Selected record count.
    pub fn len(&self) -> usize {
        match &self.sel {
            Selection::Range { lo, hi } => (hi - lo) as usize,
            Selection::Indices(ix) => ix.len(),
        }
    }

    /// `true` when the slice selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th selected record.
    pub fn get(&self, i: usize) -> Option<&Read> {
        match &self.sel {
            Selection::Range { lo, hi } => {
                let at = *lo as usize + i;
                if at < *hi as usize {
                    self.chunk.reads().get(at)
                } else {
                    None
                }
            }
            Selection::Indices(ix) => ix.get(i).map(|&j| &self.chunk.reads()[j as usize]),
        }
    }

    /// Iterates the selected records in order.
    pub fn iter(&self) -> impl Iterator<Item = &Read> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index within selection"))
    }
}

/// A zero-copy result of a `get` or `scan`: borrowed record slices
/// over the engine's cached chunks, in dataset order.
///
/// Resolving a request into a view copies **no record payloads** —
/// the view pins the decoded chunks it touches via `Arc` and walks
/// them in place. [`ReadView::to_owned`] is the explicit opt-in to
/// the old copying behavior for callers that need an owned
/// [`ReadSet`] (e.g. to re-append or mutate).
///
/// ```
/// use sage_store::client::DatasetBuilder;
/// use sage_genomics::sim::{simulate_dataset, DatasetProfile};
///
/// # fn main() -> Result<(), sage_store::StoreError> {
/// let ds = simulate_dataset(&DatasetProfile::tiny_short(), 3);
/// let dataset = DatasetBuilder::new().chunk_reads(16).encode(&ds.reads)?;
/// let view = dataset.session().get(4..12)?.join()?;   // ReadView
/// assert_eq!(view.len(), 8);
/// // Records are read in place, straight out of the cached chunk:
/// assert_eq!(view.get(0).unwrap().seq, ds.reads.reads()[4].seq);
/// // Owning the records is an explicit copy:
/// let owned = view.to_owned();
/// assert_eq!(owned.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReadView {
    slices: Vec<RecordSlice>,
    len: usize,
}

impl ReadView {
    /// An empty view.
    pub fn new() -> ReadView {
        ReadView::default()
    }

    /// Appends a slice (empty slices are dropped, not stored).
    pub fn push(&mut self, slice: RecordSlice) {
        if slice.is_empty() {
            return;
        }
        self.len += slice.len();
        self.slices.push(slice);
    }

    /// Selected record count across all slices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chunks the view borrows from.
    pub fn n_slices(&self) -> usize {
        self.slices.len()
    }

    /// The `i`-th selected record, in dataset order across slices.
    pub fn get(&self, mut i: usize) -> Option<&Read> {
        for s in &self.slices {
            if i < s.len() {
                return s.get(i);
            }
            i -= s.len();
        }
        None
    }

    /// Iterates every selected record in dataset order.
    pub fn iter(&self) -> impl Iterator<Item = &Read> + '_ {
        self.slices.iter().flat_map(RecordSlice::iter)
    }

    /// Total bases across the selected records.
    pub fn total_bases(&self) -> usize {
        self.iter().map(Read::len).sum()
    }

    /// Copies the selected records into an owned [`ReadSet`] — the
    /// one place the zero-copy path pays the per-record copy, and
    /// only when a caller asks for ownership.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_owned(&self) -> ReadSet {
        self.iter().cloned().collect()
    }
}

impl<'a> IntoIterator for &'a ReadView {
    type Item = &'a Read;
    type IntoIter = Box<dyn Iterator<Item = &'a Read> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(n: usize, tag: u8) -> Arc<ReadSet> {
        let mut rs = ReadSet::new();
        for i in 0..n {
            let mut r = Read::from_seq("ACGT".parse().unwrap());
            r.qual = Some(vec![b'!' + tag, b'!' + i as u8]);
            rs.push(r);
        }
        Arc::new(rs)
    }

    #[test]
    fn range_slices_select_contiguous_runs() {
        let c = chunk(8, 0);
        let s = RecordSlice::range(Arc::clone(&c), 2, 6);
        assert_eq!(s.len(), 4);
        for (i, r) in s.iter().enumerate() {
            assert_eq!(r.qual, c.reads()[2 + i].qual);
        }
        assert!(s.get(4).is_none());
    }

    #[test]
    fn index_slices_select_sparse_records() {
        let c = chunk(8, 1);
        let s = RecordSlice::indices(Arc::clone(&c), vec![0, 3, 7]);
        assert_eq!(s.len(), 3);
        let got: Vec<_> = s.iter().map(|r| r.qual.clone()).collect();
        assert_eq!(got[0], c.reads()[0].qual);
        assert_eq!(got[1], c.reads()[3].qual);
        assert_eq!(got[2], c.reads()[7].qual);
    }

    #[test]
    fn views_chain_slices_in_order() {
        let a = chunk(4, 0);
        let b = chunk(4, 1);
        let mut v = ReadView::new();
        v.push(RecordSlice::range(Arc::clone(&a), 2, 4));
        v.push(RecordSlice::range(Arc::clone(&b), 0, 0)); // dropped
        v.push(RecordSlice::indices(Arc::clone(&b), vec![1, 2]));
        assert_eq!(v.len(), 4);
        assert_eq!(v.n_slices(), 2);
        assert_eq!(v.get(0).unwrap().qual, a.reads()[2].qual);
        assert_eq!(v.get(3).unwrap().qual, b.reads()[2].qual);
        assert!(v.get(4).is_none());
        let owned = v.to_owned();
        assert_eq!(owned.len(), 4);
        for (x, y) in v.iter().zip(owned.iter()) {
            assert_eq!(x.qual, y.qual);
        }
        assert_eq!(v.total_bases(), 16);
    }

    #[test]
    fn views_share_not_copy_the_chunk() {
        let c = chunk(4, 0);
        let v = {
            let mut v = ReadView::new();
            v.push(RecordSlice::range(Arc::clone(&c), 0, 4));
            v
        };
        // Two owners: the test's Arc and the view's slice.
        assert_eq!(Arc::strong_count(&c), 2);
        drop(v);
        assert_eq!(Arc::strong_count(&c), 1);
    }

    #[test]
    #[should_panic(expected = "out of chunk bounds")]
    fn out_of_bounds_ranges_panic() {
        let c = chunk(2, 0);
        let _ = RecordSlice::range(c, 0, 3);
    }
}
