//! Chunk caches (LRU and segmented-LRU) with exported hit/miss
//! statistics.
//!
//! Decoding a chunk costs a mapper-scale amount of CPU (and, in the
//! SSD timing mode, a device read); the engine keeps the most recently
//! used decoded chunks pinned in memory. Capacity is counted in
//! chunks: chunk population is fixed at encode time, so chunk count is
//! a faithful proxy for memory.
//!
//! Three eviction policies implement the [`ChunkCache`] trait (the
//! ROADMAP's eviction-policy ablation grows here):
//!
//! - [`LruCache`] — plain least-recently-used.
//! - [`SegmentedLruCache`] — SLRU: new chunks enter a *probationary*
//!   segment; only a second touch promotes them into the *protected*
//!   segment. One-shot scans churn probation and leave the hot set
//!   alone, which plain LRU cannot do.
//! - [`ClockCache`] — CLOCK (second-chance): a circular buffer of
//!   slots with one reference bit each; the hand sweeps past recently
//!   touched slots, clearing their bit, and evicts the first
//!   untouched one. LRU-like behavior at O(1) amortized bookkeeping —
//!   the classic buffer-pool policy, here as an ablation point.
//! - [`TwoQCache`] — 2Q: new chunks enter a small FIFO (**A1in**);
//!   evicted A1in ids are remembered in a data-free ghost list
//!   (**A1out**), and only a chunk that misses *while ghosted* is
//!   admitted to the LRU main area (**Am**). One-shot scans churn the
//!   FIFO and the ghosts without ever entering Am — the strongest
//!   scan resistance of the four, at the cost of a second fetch
//!   before a chunk earns main-area residency.

use sage_genomics::ReadSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The engine's cache interface: any eviction policy over decoded
/// chunks keyed by chunk id.
pub trait ChunkCache: Send + std::fmt::Debug {
    /// Looks up a chunk, refreshing its recency on hit.
    fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>>;

    /// Inserts a decoded chunk, returning how many entries were
    /// evicted to make room.
    fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64;

    /// Resident chunk count.
    fn len(&self) -> usize;

    /// Capacity in chunks.
    fn capacity(&self) -> usize;

    /// `true` when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which [`ChunkCache`] implementation an engine uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Plain least-recently-used.
    #[default]
    Lru,
    /// Segmented LRU (probationary + protected segments).
    SegmentedLru,
    /// CLOCK / second-chance (reference bits swept by a hand).
    Clock,
    /// 2Q (A1in FIFO + A1out ghosts + Am main LRU).
    TwoQ,
}

impl CachePolicy {
    /// Builds a cache of `capacity` chunks under this policy.
    pub fn build(self, capacity: usize) -> Box<dyn ChunkCache> {
        match self {
            CachePolicy::Lru => Box::new(LruCache::new(capacity)),
            CachePolicy::SegmentedLru => Box::new(SegmentedLruCache::new(capacity)),
            CachePolicy::Clock => Box::new(ClockCache::new(capacity)),
            CachePolicy::TwoQ => Box::new(TwoQCache::new(capacity)),
        }
    }

    /// All policies, for ablation sweeps.
    pub fn all() -> [CachePolicy; 4] {
        [
            CachePolicy::Lru,
            CachePolicy::SegmentedLru,
            CachePolicy::Clock,
            CachePolicy::TwoQ,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::SegmentedLru => "slru",
            CachePolicy::Clock => "clock",
            CachePolicy::TwoQ => "2q",
        }
    }
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Shared, thread-safe counters (updated outside the cache lock).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` evictions.
    pub fn evicted(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A least-recently-used cache keyed by chunk id.
///
/// Recency is tracked with a monotone tick per entry; eviction scans
/// for the minimum. With the few dozen to few hundred resident chunks
/// a store realistically pins, the O(capacity) scan is cheaper than
/// maintaining an intrusive list — and it keeps the structure
/// trivially correct under the engine's lock.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u32, (u64, Arc<ReadSet>)>,
}

impl LruCache {
    /// A cache holding at most `capacity` decoded chunks.
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident chunk count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a chunk, refreshing its recency on hit.
    pub fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&chunk_id).map(|(t, rs)| {
            *t = tick;
            Arc::clone(rs)
        })
    }

    /// Inserts a decoded chunk, evicting the least recently used entry
    /// if the cache is full. Returns the number of evictions (0 or 1;
    /// 0-capacity caches store nothing and evict nothing).
    pub fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&chunk_id) {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                evicted = 1;
            }
        }
        self.entries.insert(chunk_id, (self.tick, reads));
        evicted
    }
}

impl ChunkCache for LruCache {
    fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        LruCache::get(self, chunk_id)
    }

    fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        LruCache::insert(self, chunk_id, reads)
    }

    fn len(&self) -> usize {
        LruCache::len(self)
    }

    fn capacity(&self) -> usize {
        LruCache::capacity(self)
    }
}

/// One recency-ordered segment of a [`SegmentedLruCache`] (the same
/// tick-scan structure as [`LruCache`]; see there for why a scan beats
/// an intrusive list at chunk-store scale).
#[derive(Debug, Default)]
struct Segment {
    entries: HashMap<u32, (u64, Arc<ReadSet>)>,
}

impl Segment {
    fn touch(&mut self, chunk_id: u32, tick: u64) -> Option<Arc<ReadSet>> {
        self.entries.get_mut(&chunk_id).map(|(t, rs)| {
            *t = tick;
            Arc::clone(rs)
        })
    }

    /// Removes and returns the least recently used entry.
    fn pop_lru(&mut self) -> Option<(u32, Arc<ReadSet>)> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(&k, _)| k)?;
        let (_, rs) = self.entries.remove(&victim).expect("victim resident");
        Some((victim, rs))
    }
}

/// A segmented-LRU (SLRU) cache keyed by chunk id.
///
/// New chunks enter the **probationary** segment; a hit there promotes
/// the chunk into the **protected** segment (demoting the protected
/// LRU back to probation when full — a demotion, not an eviction).
/// Only probationary entries are ever evicted from the cache, so a
/// burst of one-shot chunks — a cold scan walking the whole dataset —
/// cannot flush the twice-touched hot set.
#[derive(Debug)]
pub struct SegmentedLruCache {
    capacity: usize,
    protected_capacity: usize,
    tick: u64,
    probation: Segment,
    protected: Segment,
}

impl SegmentedLruCache {
    /// Default protected share of the capacity.
    pub const PROTECTED_FRACTION: f64 = 0.5;

    /// A cache of `capacity` chunks with the default protected share.
    pub fn new(capacity: usize) -> SegmentedLruCache {
        SegmentedLruCache::with_protected_fraction(capacity, Self::PROTECTED_FRACTION)
    }

    /// A cache of `capacity` chunks reserving `fraction` of it for the
    /// protected segment (clamped to `[0, 1]`; at least one slot stays
    /// probationary whenever `capacity > 0`, because every chunk must
    /// pass through probation to be admitted at all).
    pub fn with_protected_fraction(capacity: usize, fraction: f64) -> SegmentedLruCache {
        let protected_capacity = if capacity == 0 {
            0
        } else {
            (((capacity as f64) * fraction.clamp(0.0, 1.0)).round() as usize).min(capacity - 1)
        };
        SegmentedLruCache {
            capacity,
            protected_capacity,
            tick: 0,
            probation: Segment::default(),
            protected: Segment::default(),
        }
    }

    /// Chunks currently in the protected segment.
    pub fn protected_len(&self) -> usize {
        self.protected.entries.len()
    }

    /// Chunks currently in the probationary segment.
    pub fn probation_len(&self) -> usize {
        self.probation.entries.len()
    }
}

impl ChunkCache for SegmentedLruCache {
    fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(rs) = self.protected.touch(chunk_id, tick) {
            return Some(rs);
        }
        let (_, rs) = self.probation.entries.remove(&chunk_id)?;
        // Second touch: promote. The displaced protected LRU goes back
        // to probation (most recent there), not out of the cache.
        if self.protected_capacity == 0 {
            self.probation
                .entries
                .insert(chunk_id, (tick, Arc::clone(&rs)));
            return Some(rs);
        }
        if self.protected.entries.len() >= self.protected_capacity {
            if let Some((demoted, demoted_rs)) = self.protected.pop_lru() {
                self.probation.entries.insert(demoted, (tick, demoted_rs));
            }
        }
        self.tick += 1;
        self.protected
            .entries
            .insert(chunk_id, (self.tick, Arc::clone(&rs)));
        Some(rs)
    }

    fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let tick = self.tick;
        // A resident chunk just gets its value refreshed in place.
        if let Some(slot) = self.protected.entries.get_mut(&chunk_id) {
            *slot = (tick, reads);
            return 0;
        }
        if let Some(slot) = self.probation.entries.get_mut(&chunk_id) {
            *slot = (tick, reads);
            return 0;
        }
        let mut evicted = 0;
        if self.len() >= self.capacity {
            // Only probation evicts; demotions keep it non-empty
            // whenever the cache is full.
            if self.probation.pop_lru().is_some() {
                evicted = 1;
            }
        }
        self.probation.entries.insert(chunk_id, (tick, reads));
        evicted
    }

    fn len(&self) -> usize {
        self.probation.entries.len() + self.protected.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One slot of a [`ClockCache`]: an entry plus its reference bit.
#[derive(Debug)]
struct ClockSlot {
    chunk_id: u32,
    referenced: bool,
    reads: Arc<ReadSet>,
}

/// A CLOCK (second-chance) cache keyed by chunk id.
///
/// Entries live in a fixed circular buffer; each carries a reference
/// bit set on every touch. On eviction a hand sweeps the ring: slots
/// with the bit set get a second chance (bit cleared, hand moves on),
/// and the first slot found with the bit clear is the victim. The
/// sweep is O(1) amortized — each pass clears bits that took O(1) each
/// to set — which is why buffer pools prefer CLOCK to exact LRU at
/// scale.
#[derive(Debug)]
pub struct ClockCache {
    capacity: usize,
    hand: usize,
    slots: Vec<Option<ClockSlot>>,
    /// chunk id → slot index.
    index: HashMap<u32, usize>,
}

impl ClockCache {
    /// A cache holding at most `capacity` decoded chunks. The slot
    /// ring grows lazily with the resident set, so a huge capacity
    /// costs nothing until it is actually used.
    pub fn new(capacity: usize) -> ClockCache {
        ClockCache {
            capacity,
            hand: 0,
            slots: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Advances the hand one position (wrapping).
    fn advance(&mut self) {
        self.hand = (self.hand + 1) % self.slots.len().max(1);
    }

    /// Sweeps the hand to a victim slot, granting second chances, and
    /// evicts it. Only called when every slot is occupied, so the
    /// sweep terminates within two revolutions.
    fn evict_one(&mut self) {
        loop {
            let slot = self.slots[self.hand]
                .as_mut()
                .expect("evict_one only runs on a full ring");
            if slot.referenced {
                slot.referenced = false;
                self.advance();
                continue;
            }
            let victim = self.slots[self.hand].take().expect("occupied");
            self.index.remove(&victim.chunk_id);
            // The freed slot is where the next insert lands; leave the
            // hand pointing at it.
            return;
        }
    }
}

impl ChunkCache for ClockCache {
    fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        let &i = self.index.get(&chunk_id)?;
        let slot = self.slots[i].as_mut().expect("indexed slot occupied");
        slot.referenced = true;
        Some(Arc::clone(&slot.reads))
    }

    fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        // A resident chunk gets its value refreshed in place.
        if let Some(&i) = self.index.get(&chunk_id) {
            let slot = self.slots[i].as_mut().expect("indexed slot occupied");
            slot.referenced = true;
            slot.reads = reads;
            return 0;
        }
        let mut evicted = 0;
        if self.slots.len() < self.capacity {
            // Warm-up: grow the ring to the full configured capacity
            // instead of evicting.
            self.slots.push(None);
        } else if self.index.len() >= self.slots.len() {
            self.evict_one();
            evicted = 1;
        }
        // Find the free slot (the hand sits on one after eviction;
        // scan during warm-up).
        let free = if self.slots[self.hand].is_none() {
            self.hand
        } else {
            (0..self.slots.len())
                .find(|&i| self.slots[i].is_none())
                .expect("a slot is free after eviction")
        };
        self.slots[free] = Some(ClockSlot {
            chunk_id,
            // A fresh entry starts *unreferenced*: only a real touch
            // after admission earns the second chance. This is what
            // lets a one-shot burst recycle its own slots instead of
            // forcing touched entries out.
            referenced: false,
            reads,
        });
        self.index.insert(chunk_id, free);
        evicted
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A 2Q cache keyed by chunk id.
///
/// Three areas, per the classic simplified-2Q algorithm:
///
/// - **A1in** — a small FIFO (a quarter of the capacity) that every
///   first-seen chunk enters. Hits in A1in serve the data but do not
///   reorder it; a one-shot burst flows through and falls out the far
///   end.
/// - **A1out** — a data-free *ghost* list (half the capacity, ids
///   only) remembering what recently fell out of A1in.
/// - **Am** — the main LRU area. A chunk is admitted here only when it
///   is inserted *while its id is ghosted* — i.e. it missed again
///   shortly after leaving the FIFO, which is 2Q's evidence of real
///   reuse. Scans never produce that evidence, so they never displace
///   the main area: when the cache is full, eviction drains A1in
///   first and touches Am only once the FIFO is below its quota.
#[derive(Debug)]
pub struct TwoQCache {
    capacity: usize,
    /// FIFO quota: evictions drain A1in while it holds at least this
    /// many chunks.
    a1in_capacity: usize,
    /// Ghost-list bound (ids only; no data retained).
    ghost_capacity: usize,
    tick: u64,
    a1in: Segment,
    am: Segment,
    /// Ghosted id → expiry order (oldest trimmed first).
    ghost: HashMap<u32, u64>,
}

impl TwoQCache {
    /// A1in's share of the capacity (Kin in the 2Q paper).
    pub const A1IN_FRACTION: f64 = 0.25;
    /// A1out's share of the capacity (Kout in the 2Q paper).
    pub const GHOST_FRACTION: f64 = 0.5;

    /// A cache holding at most `capacity` decoded chunks (plus up to
    /// `capacity/2` data-free ghost ids).
    pub fn new(capacity: usize) -> TwoQCache {
        TwoQCache {
            capacity,
            a1in_capacity: ((capacity as f64 * Self::A1IN_FRACTION) as usize).max(1),
            ghost_capacity: (capacity as f64 * Self::GHOST_FRACTION) as usize,
            tick: 0,
            a1in: Segment::default(),
            am: Segment::default(),
            ghost: HashMap::new(),
        }
    }

    /// Chunks currently in the main (Am) area.
    pub fn main_len(&self) -> usize {
        self.am.entries.len()
    }

    /// Chunks currently in the A1in FIFO.
    pub fn fifo_len(&self) -> usize {
        self.a1in.entries.len()
    }

    /// Ids currently ghosted (no data retained).
    pub fn ghost_len(&self) -> usize {
        self.ghost.len()
    }

    /// Remembers an id in the ghost list, trimming the oldest ghosts
    /// past the bound.
    fn remember_ghost(&mut self, chunk_id: u32) {
        if self.ghost_capacity == 0 {
            return;
        }
        self.tick += 1;
        self.ghost.insert(chunk_id, self.tick);
        while self.ghost.len() > self.ghost_capacity {
            let oldest = self
                .ghost
                .iter()
                .min_by_key(|(_, t)| **t)
                .map(|(&k, _)| k)
                .expect("non-empty ghost list");
            self.ghost.remove(&oldest);
        }
    }

    /// Frees one resident slot: drains the A1in FIFO (ghosting the
    /// victim) while it is at quota, otherwise evicts the Am LRU
    /// (unghosted — Am residents already proved reuse once).
    fn evict_one(&mut self) {
        if self.a1in.entries.len() >= self.a1in_capacity {
            if let Some((victim, _)) = self.a1in.pop_lru() {
                self.remember_ghost(victim);
                return;
            }
        }
        if self.am.pop_lru().is_none() {
            // Degenerate split: everything resident sits in an
            // under-quota A1in (e.g. capacity 1). Drain it anyway.
            if let Some((victim, _)) = self.a1in.pop_lru() {
                self.remember_ghost(victim);
            }
        }
    }
}

impl ChunkCache for TwoQCache {
    fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(rs) = self.am.touch(chunk_id, tick) {
            return Some(rs);
        }
        // A1in hits serve the data but keep FIFO order: recency inside
        // the admission queue is deliberately ignored.
        self.a1in
            .entries
            .get(&chunk_id)
            .map(|(_, rs)| Arc::clone(rs))
    }

    fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let tick = self.tick;
        // A resident chunk just gets its value refreshed in place
        // (A1in keeps its original FIFO position).
        if let Some(slot) = self.am.entries.get_mut(&chunk_id) {
            *slot = (tick, reads);
            return 0;
        }
        if let Some((_, slot)) = self.a1in.entries.get_mut(&chunk_id) {
            *slot = reads;
            return 0;
        }
        let mut evicted = 0;
        if self.len() >= self.capacity {
            self.evict_one();
            evicted = 1;
        }
        if self.ghost.remove(&chunk_id).is_some() {
            // Missed again while ghosted: proven reuse, admit to Am.
            self.am.entries.insert(chunk_id, (tick, reads));
        } else {
            self.a1in.entries.insert(chunk_id, (tick, reads));
        }
        evicted
    }

    fn len(&self) -> usize {
        self.a1in.entries.len() + self.am.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One shard of a [`StripedCache`]: a policy instance behind its own
/// lock, plus lock-occupancy accounting.
#[derive(Debug)]
struct CacheShard {
    cache: Mutex<Box<dyn ChunkCache>>,
    /// Nanoseconds the shard lock was *held* (critical-section time).
    busy_ns: AtomicU64,
    /// Times the shard lock was taken.
    acquisitions: AtomicU64,
}

impl CacheShard {
    /// Runs `f` under the shard lock, accounting the hold time.
    ///
    /// The accounting costs two monotonic-clock reads plus two
    /// relaxed counter bumps per access — the accepted price of the
    /// cache's built-in observability, mirroring the device models'
    /// per-charge accounting. Note the hold time is *wall* time: on
    /// an oversubscribed host a thread preempted mid-hold accrues
    /// scheduler quanta into its shard's busy count, so busy-seconds
    /// comparisons are only meaningful on a quiet machine — the
    /// acquisition *counts* are exact and deterministic regardless.
    fn with<T>(&self, f: impl FnOnce(&mut dyn ChunkCache) -> T) -> T {
        let mut guard = self.cache.lock().expect("cache shard poisoned");
        let held = Instant::now();
        let out = f(guard.as_mut());
        drop(guard);
        self.busy_ns
            .fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        out
    }
}

/// A point-in-time view of a [`StripedCache`]'s shard occupancy and
/// lock accounting, aggregated across shards.
///
/// Two serialization lenses, with different trust levels:
///
/// - `shard_acquisitions` / `max_shard_acquisitions` — **exact and
///   deterministic**: how many critical sections each shard lock
///   executed. The busiest shard's count is the number of cache
///   operations that serialize behind one lock; striping divides it.
///   Same access stream ⇒ same counts, on any machine under any load.
/// - `shard_busy_seconds` / `max_shard_busy_seconds` — measured
///   *wall-clock* hold time, the striped analogue of the device
///   models' busy-seconds. Meaningful on a quiet host; on an
///   oversubscribed one, preemption mid-hold inflates it (and
///   inflates it *more* the more locks are concurrently held), so
///   prefer the acquisition counts for assertions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StripeSnapshot {
    /// Shard count.
    pub shards: usize,
    /// Resident chunks summed across shards.
    pub len: usize,
    /// Capacity summed across shards (the configured total).
    pub capacity: usize,
    /// Lock acquisitions summed across shards.
    pub lock_acquisitions: u64,
    /// The most-loaded shard's lock acquisitions — the exact count of
    /// cache operations serialized behind one lock.
    pub max_shard_acquisitions: u64,
    /// Per-shard lock acquisitions.
    pub shard_acquisitions: Vec<u64>,
    /// Lock hold seconds summed across shards (wall-clock measured).
    pub lock_busy_seconds: f64,
    /// The most-loaded shard's lock hold seconds (wall-clock
    /// measured).
    pub max_shard_busy_seconds: f64,
    /// Per-shard lock hold seconds (wall-clock measured).
    pub shard_busy_seconds: Vec<f64>,
}

/// An N-shard striped chunk cache: shard = `chunk_id % N`, each shard
/// its own lock and its own [`CachePolicy`] instance.
///
/// The single global cache mutex used to serialize *every* request on
/// the serving hot path — cache hits included. Striping spreads that
/// critical section over N independent locks while preserving the
/// eviction policy per shard: with `n_shards == 1` the striped cache
/// is byte-for-byte the old single-lock cache (same policy instance,
/// same capacity, same probe order), which is what keeps the default
/// configuration's virtual timeline bit-identical.
///
/// Capacity is split as evenly as chunk counts allow (the first
/// `capacity % N` shards get one extra slot), so the configured total
/// is always exactly honored.
#[derive(Debug)]
pub struct StripedCache {
    shards: Vec<CacheShard>,
    capacity: usize,
}

impl StripedCache {
    /// A striped cache of `capacity` total chunks over `n_shards`
    /// instances of `policy`.
    ///
    /// The effective shard count is clamped to `capacity` (and to at
    /// least 1): more shards than capacity would leave some shards
    /// with **zero** slots, silently making every chunk id mapping to
    /// them permanently uncacheable. Clamping keeps every id class
    /// cacheable and the configured total capacity exactly honored —
    /// [`StripedCache::n_shards`] reports the effective count.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is 0.
    pub fn new(policy: CachePolicy, capacity: usize, n_shards: usize) -> StripedCache {
        assert!(n_shards > 0, "a striped cache needs at least one shard");
        let n_shards = n_shards.min(capacity).max(1);
        let shards = (0..n_shards)
            .map(|i| {
                let cap = capacity / n_shards + usize::from(i < capacity % n_shards);
                CacheShard {
                    cache: Mutex::new(policy.build(cap)),
                    busy_ns: AtomicU64::new(0),
                    acquisitions: AtomicU64::new(0),
                }
            })
            .collect();
        StripedCache { shards, capacity }
    }

    /// Shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident chunks summed across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.with(|c| c.len())).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, chunk_id: u32) -> &CacheShard {
        &self.shards[chunk_id as usize % self.shards.len()]
    }

    /// Looks up a chunk in its shard, refreshing recency on hit.
    pub fn get(&self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        self.shard(chunk_id).with(|c| c.get(chunk_id))
    }

    /// Inserts a decoded chunk into its shard, returning how many
    /// entries that shard evicted to make room.
    pub fn insert(&self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        self.shard(chunk_id).with(|c| c.insert(chunk_id, reads))
    }

    /// Probes a batch of chunk ids, taking each touched shard's lock
    /// **once** (in first-touch order) instead of once per id. Within
    /// a shard, ids are probed in their `ids` order, so a one-shard
    /// cache probes in exactly the order the old global-lock batch
    /// probe did.
    pub fn get_batch(&self, ids: &[u32]) -> Vec<Option<Arc<ReadSet>>> {
        // Single-id probes — the dominant warm-get shape — skip the
        // grouping machinery entirely.
        if let [id] = ids {
            return vec![self.get(*id)];
        }
        let n = self.shards.len();
        let mut out: Vec<Option<Arc<ReadSet>>> = vec![None; ids.len()];
        // Group positions by shard in first-touch order. A batch
        // touches few distinct shards, so the linear group lookup is
        // cheaper than allocating a shard-count-sized bucket table on
        // every call.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let s = *id as usize % n;
            match groups.iter_mut().find(|(g, _)| *g == s) {
                Some((_, positions)) => positions.push(i),
                None => groups.push((s, vec![i])),
            }
        }
        for (s, positions) in groups {
            self.shards[s].with(|c| {
                for &i in &positions {
                    out[i] = c.get(ids[i]);
                }
            });
        }
        out
    }

    /// Aggregated shard occupancy and lock accounting.
    pub fn stripe_snapshot(&self) -> StripeSnapshot {
        let mut snap = StripeSnapshot {
            shards: self.shards.len(),
            capacity: self.capacity,
            ..StripeSnapshot::default()
        };
        for s in &self.shards {
            snap.len += s.with(|c| c.len());
            let acq = s.acquisitions.load(Ordering::Relaxed);
            snap.lock_acquisitions += acq;
            snap.max_shard_acquisitions = snap.max_shard_acquisitions.max(acq);
            snap.shard_acquisitions.push(acq);
            let busy = s.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9;
            snap.lock_busy_seconds += busy;
            snap.max_shard_busy_seconds = snap.max_shard_busy_seconds.max(busy);
            snap.shard_busy_seconds.push(busy);
        }
        // The snapshot reads above took the locks too; exclude nothing
        // — they are part of the measured serving traffic only in a
        // negligible way, and consumers difference snapshots anyway.
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(n: usize) -> Arc<ReadSet> {
        let mut set = ReadSet::new();
        for _ in 0..n {
            set.push(sage_genomics::Read::from_seq("ACGT".parse().unwrap()));
        }
        Arc::new(set)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(0, rs(1));
        c.insert(1, rs(2));
        assert!(c.get(0).is_some()); // 0 is now fresher than 1
        assert_eq!(c.insert(2, rs(3)), 1); // evicts 1
        assert!(c.get(1).is_none());
        assert!(c.get(0).is_some());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn reinserting_resident_chunk_evicts_nothing() {
        let mut c = LruCache::new(2);
        c.insert(0, rs(1));
        c.insert(1, rs(1));
        assert_eq!(c.insert(1, rs(2)), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().len(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(5, rs(1)), 0);
        assert!(c.get(5).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn slru_promotes_on_second_touch() {
        let mut c = SegmentedLruCache::new(4); // 2 probation + 2 protected
        c.insert(0, rs(1));
        c.insert(1, rs(1));
        assert_eq!(c.probation_len(), 2);
        assert_eq!(c.protected_len(), 0);
        // Second touch moves chunk 0 into the protected segment.
        assert!(ChunkCache::get(&mut c, 0).is_some());
        assert_eq!(c.probation_len(), 1);
        assert_eq!(c.protected_len(), 1);
    }

    #[test]
    fn slru_scan_burst_cannot_flush_the_hot_set() {
        let mut c = SegmentedLruCache::new(4);
        // Build a hot set of two protected chunks.
        for id in [0, 1] {
            c.insert(id, rs(1));
            assert!(ChunkCache::get(&mut c, id).is_some());
        }
        assert_eq!(c.protected_len(), 2);
        // A one-shot scan over 20 cold chunks churns probation only.
        for id in 100..120 {
            c.insert(id, rs(1));
        }
        assert!(ChunkCache::get(&mut c, 0).is_some(), "hot chunk survived");
        assert!(ChunkCache::get(&mut c, 1).is_some(), "hot chunk survived");
        // Plain LRU at the same capacity loses the hot set entirely.
        let mut lru = LruCache::new(4);
        for id in [0, 1] {
            lru.insert(id, rs(1));
            assert!(LruCache::get(&mut lru, id).is_some());
        }
        for id in 100..120 {
            LruCache::insert(&mut lru, id, rs(1));
        }
        assert!(LruCache::get(&mut lru, 0).is_none());
        assert!(LruCache::get(&mut lru, 1).is_none());
    }

    #[test]
    fn slru_demotion_is_not_eviction() {
        let mut c = SegmentedLruCache::new(4); // protected capacity 2
        for id in 0..3 {
            c.insert(id, rs(1));
            assert!(ChunkCache::get(&mut c, id).is_some());
        }
        // Promoting chunk 2 demoted chunk 0 back to probation — still
        // resident, still a hit.
        assert_eq!(c.protected_len(), 2);
        assert_eq!(c.len(), 3);
        assert!(ChunkCache::get(&mut c, 0).is_some());
    }

    #[test]
    fn slru_respects_capacity_and_counts_evictions() {
        let mut c = SegmentedLruCache::new(2);
        assert_eq!(c.insert(0, rs(1)), 0);
        assert_eq!(c.insert(1, rs(1)), 0);
        assert_eq!(c.insert(2, rs(1)), 1);
        assert_eq!(c.len(), 2);
        // Re-inserting a resident chunk evicts nothing.
        assert_eq!(c.insert(2, rs(2)), 0);
        assert_eq!(ChunkCache::get(&mut c, 2).unwrap().len(), 2);
    }

    #[test]
    fn slru_zero_and_one_capacity_degenerate_cleanly() {
        let mut zero = SegmentedLruCache::new(0);
        assert_eq!(zero.insert(5, rs(1)), 0);
        assert!(ChunkCache::get(&mut zero, 5).is_none());
        assert!(ChunkCache::is_empty(&zero));
        // Capacity 1 has no protected room: behaves like LRU(1).
        let mut one = SegmentedLruCache::new(1);
        one.insert(0, rs(1));
        assert!(ChunkCache::get(&mut one, 0).is_some());
        assert_eq!(one.protected_len(), 0);
        assert_eq!(one.insert(1, rs(1)), 1);
        assert!(ChunkCache::get(&mut one, 0).is_none());
    }

    #[test]
    fn policy_builds_the_right_cache() {
        for policy in CachePolicy::all() {
            let mut c = policy.build(3);
            c.insert(1, rs(1));
            assert_eq!(c.capacity(), 3, "{}", policy.label());
            assert!(c.get(1).is_some(), "{}", policy.label());
        }
    }

    #[test]
    fn clock_gives_touched_entries_a_second_chance() {
        let mut c = ClockCache::new(3);
        for id in 0..3 {
            c.insert(id, rs(1));
        }
        // Touch 0 and 1; 2's reference bit decays as the hand sweeps.
        assert!(ChunkCache::get(&mut c, 0).is_some());
        assert!(ChunkCache::get(&mut c, 1).is_some());
        // Full ring: inserting 3 must evict *something*, and the
        // recently touched 0 and 1 must survive the sweep.
        assert_eq!(c.insert(3, rs(1)), 1);
        assert_eq!(c.len(), 3);
        assert!(
            ChunkCache::get(&mut c, 0).is_some(),
            "touched entry evicted"
        );
        assert!(
            ChunkCache::get(&mut c, 1).is_some(),
            "touched entry evicted"
        );
        assert!(ChunkCache::get(&mut c, 3).is_some(), "fresh entry evicted");
        assert!(
            ChunkCache::get(&mut c, 2).is_none(),
            "victim still resident"
        );
    }

    #[test]
    fn clock_reinsert_refreshes_in_place() {
        let mut c = ClockCache::new(2);
        c.insert(0, rs(1));
        c.insert(1, rs(1));
        assert_eq!(c.insert(1, rs(2)), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(ChunkCache::get(&mut c, 1).unwrap().len(), 2);
    }

    #[test]
    fn clock_respects_capacity_under_churn() {
        let mut c = ClockCache::new(4);
        let mut evictions = 0;
        for id in 0..64 {
            evictions += c.insert(id, rs(1));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(evictions, 60);
        // The survivors are real, resident entries.
        let resident = (0..64)
            .filter(|&id| ChunkCache::get(&mut c, id).is_some())
            .count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn clock_honors_capacities_past_the_old_slot_cap() {
        // The slot ring used to be silently capped at 2^16 entries;
        // a larger configured capacity must really be usable.
        let cap = (1 << 16) + 50;
        let mut c = ClockCache::new(cap);
        let shared = rs(1);
        let mut evictions = 0;
        for id in 0..(cap as u32 + 10) {
            evictions += c.insert(id, Arc::clone(&shared));
        }
        assert_eq!(c.len(), cap);
        assert_eq!(evictions, 10);
        assert_eq!(c.capacity(), cap);
    }

    #[test]
    fn clock_zero_capacity_caches_nothing() {
        let mut c = ClockCache::new(0);
        assert_eq!(c.insert(5, rs(1)), 0);
        assert!(ChunkCache::get(&mut c, 5).is_none());
        assert!(ChunkCache::is_empty(&c));
    }

    /// Cycles `id` through A1in and the ghost list into Am: insert →
    /// force a FIFO eviction → reinsert while ghosted.
    fn promote_to_main(c: &mut TwoQCache, id: u32, filler: &mut u32) {
        c.insert(id, rs(1));
        while !c.ghost.contains_key(&id) {
            *filler += 1;
            c.insert(1_000_000 + *filler, rs(1));
        }
        c.insert(id, rs(1));
        assert!(c.am.entries.contains_key(&id), "{id} should be in Am");
    }

    #[test]
    fn twoq_admits_to_main_only_via_ghosts() {
        let mut c = TwoQCache::new(4); // a1in quota 1, ghosts 2
        c.insert(0, rs(1));
        assert_eq!(c.fifo_len(), 1);
        assert_eq!(c.main_len(), 0);
        // An A1in hit serves the data without promoting.
        assert!(ChunkCache::get(&mut c, 0).is_some());
        assert_eq!(c.main_len(), 0);
        // Push 0 out of the FIFO: its data is gone, its id ghosted.
        for id in [1, 2, 3, 4] {
            c.insert(id, rs(1));
        }
        assert!(ChunkCache::get(&mut c, 0).is_none(), "ghosts hold no data");
        assert!(c.ghost_len() > 0);
        // The re-miss insert lands in Am.
        c.insert(0, rs(1));
        assert_eq!(c.main_len(), 1);
        assert!(ChunkCache::get(&mut c, 0).is_some());
    }

    #[test]
    fn twoq_scan_burst_cannot_flush_the_main_area() {
        let mut c = TwoQCache::new(4);
        let mut filler = 0;
        promote_to_main(&mut c, 0, &mut filler);
        assert_eq!(c.main_len(), 1);
        // A one-shot scan over 20 cold chunks churns the FIFO and the
        // ghosts only.
        for id in 100..120 {
            c.insert(id, rs(1));
        }
        assert!(
            ChunkCache::get(&mut c, 0).is_some(),
            "main-area chunk survived the scan"
        );
        assert_eq!(c.main_len(), 1);
        // Plain LRU at the same capacity loses the hot chunk entirely.
        let mut lru = LruCache::new(4);
        lru.insert(0, rs(1));
        assert!(LruCache::get(&mut lru, 0).is_some());
        for id in 100..120 {
            LruCache::insert(&mut lru, id, rs(1));
        }
        assert!(LruCache::get(&mut lru, 0).is_none());
    }

    #[test]
    fn twoq_reinsert_refreshes_in_place() {
        let mut c = TwoQCache::new(4);
        c.insert(0, rs(1));
        assert_eq!(c.insert(0, rs(2)), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(ChunkCache::get(&mut c, 0).unwrap().len(), 2);
        // Same for an Am resident.
        let mut filler = 0;
        promote_to_main(&mut c, 7, &mut filler);
        assert_eq!(c.insert(7, rs(3)), 0);
        assert_eq!(ChunkCache::get(&mut c, 7).unwrap().len(), 3);
    }

    #[test]
    fn twoq_respects_capacity_under_churn() {
        let mut c = TwoQCache::new(4);
        let mut evictions = 0;
        for id in 0..64 {
            evictions += c.insert(id, rs(1));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(evictions, 60);
        assert!(c.ghost_len() <= 2, "ghost list bounded at capacity/2");
        let resident = (0..64)
            .filter(|&id| ChunkCache::get(&mut c, id).is_some())
            .count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn twoq_zero_capacity_caches_nothing() {
        let mut c = TwoQCache::new(0);
        assert_eq!(c.insert(5, rs(1)), 0);
        assert!(ChunkCache::get(&mut c, 5).is_none());
        assert!(ChunkCache::is_empty(&c));
        assert_eq!(c.ghost_len(), 0);
    }

    #[test]
    fn twoq_capacity_one_degenerates_to_fifo() {
        let mut c = TwoQCache::new(1); // no ghost room, quota 1
        c.insert(0, rs(1));
        assert!(ChunkCache::get(&mut c, 0).is_some());
        assert_eq!(c.insert(1, rs(1)), 1);
        assert!(ChunkCache::get(&mut c, 0).is_none());
        assert!(ChunkCache::get(&mut c, 1).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hit_rate_math() {
        let stats = CacheStats::default();
        stats.hit();
        stats.hit();
        stats.hit();
        stats.miss();
        let snap = stats.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn one_shard_stripe_matches_the_raw_policy() {
        // At shard count 1 the striped cache must behave exactly like
        // the bare policy instance — same hits, same misses, same
        // residency — for every policy.
        let seq: Vec<(bool, u32)> = (0..64u32)
            .map(|i| ((i * 7 + 3) % 3 != 0, (i * 13 + 5) % 9))
            .collect();
        for policy in CachePolicy::all() {
            let striped = StripedCache::new(policy, 4, 1);
            let mut raw = policy.build(4);
            let mut striped_hits = Vec::new();
            let mut raw_hits = Vec::new();
            for &(is_get, id) in &seq {
                if is_get {
                    striped_hits.push(striped.get(id).is_some());
                    raw_hits.push(raw.get(id).is_some());
                } else {
                    striped.insert(id, rs(1));
                    raw.insert(id, rs(1));
                }
            }
            assert_eq!(striped_hits, raw_hits, "{}", policy.label());
            assert_eq!(striped.len(), raw.len(), "{}", policy.label());
        }
    }

    #[test]
    fn stripes_route_by_chunk_id_and_split_capacity() {
        let c = StripedCache::new(CachePolicy::Lru, 10, 4);
        assert_eq!(c.n_shards(), 4);
        assert_eq!(c.capacity(), 10);
        // 10 over 4 shards: 3 + 3 + 2 + 2.
        let caps: Vec<usize> = c
            .shards
            .iter()
            .map(|s| s.with(|cc| cc.capacity()))
            .collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 10);
        // Ids land on id % 4; same-shard ids compete, others don't.
        for id in 0..8u32 {
            c.insert(id, rs(1));
        }
        assert_eq!(c.len(), 8);
        assert!(c.get(3).is_some());
        assert!(c.get(7).is_some());
    }

    #[test]
    fn stripe_snapshot_aggregates_across_shards() {
        let c = StripedCache::new(CachePolicy::Lru, 8, 4);
        // Fill shards unevenly: shard 0 gets ids 0,4; shard 1 id 1.
        for id in [0u32, 4, 1] {
            c.insert(id, rs(1));
        }
        for id in [0u32, 0, 4, 1, 2] {
            let _ = c.get(id); // id 2 misses
        }
        let snap = c.stripe_snapshot();
        assert_eq!(snap.shards, 4);
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.len, 3);
        assert_eq!(snap.shard_busy_seconds.len(), 4);
        // 3 inserts + 5 gets = 8 accounted acquisitions at minimum
        // (the snapshot's own len probes add more).
        assert!(snap.lock_acquisitions >= 8);
        assert_eq!(snap.shard_acquisitions.len(), 4);
        assert_eq!(
            snap.shard_acquisitions.iter().sum::<u64>(),
            snap.lock_acquisitions
        );
        assert_eq!(
            snap.max_shard_acquisitions,
            snap.shard_acquisitions.iter().copied().max().unwrap()
        );
        // Shard 0 saw ids 0 and 4 (2 inserts + 3 gets + snapshot len
        // probe) — deterministically the busiest.
        assert_eq!(snap.max_shard_acquisitions, snap.shard_acquisitions[0]);
        assert!(snap.lock_busy_seconds > 0.0);
        assert!(snap.max_shard_busy_seconds <= snap.lock_busy_seconds);
        assert!(snap
            .shard_busy_seconds
            .iter()
            .all(|b| *b <= snap.max_shard_busy_seconds));
        let sum: f64 = snap.shard_busy_seconds.iter().sum();
        assert!((sum - snap.lock_busy_seconds).abs() < 1e-12);
    }

    #[test]
    fn stripe_eviction_counts_sum_like_a_single_cache() {
        // Hammer more distinct ids than capacity through every shard:
        // evictions reported per insert must sum to inserts - capacity
        // (each shard is exactly full at the end).
        let c = StripedCache::new(CachePolicy::Lru, 8, 4);
        let mut evicted = 0;
        for id in 0..64u32 {
            evicted += c.insert(id, rs(1));
        }
        assert_eq!(c.len(), 8);
        assert_eq!(evicted, 64 - 8);
    }

    #[test]
    fn batch_probe_matches_individual_probes() {
        let c = StripedCache::new(CachePolicy::SegmentedLru, 6, 3);
        for id in [0u32, 1, 2, 3, 7] {
            c.insert(id, rs(1));
        }
        let probe = StripedCache::new(CachePolicy::SegmentedLru, 6, 3);
        for id in [0u32, 1, 2, 3, 7] {
            probe.insert(id, rs(1));
        }
        let ids = [0u32, 5, 7, 2, 9, 1];
        let batch = c.get_batch(&ids);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(batch[i].is_some(), probe.get(*id).is_some(), "id {id}");
        }
    }

    #[test]
    fn zero_capacity_stripes_cache_nothing() {
        let c = StripedCache::new(CachePolicy::TwoQ, 0, 4);
        assert_eq!(c.insert(5, rs(1)), 0);
        assert!(c.get(5).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn shard_count_clamps_to_capacity() {
        // 8 shards over 4 slots would leave shards 4..8 with zero
        // capacity — chunk ids mapping there could never be cached.
        // The clamp keeps every id class cacheable.
        let c = StripedCache::new(CachePolicy::Lru, 4, 8);
        assert_eq!(c.n_shards(), 4);
        assert_eq!(c.capacity(), 4);
        for id in 0..8u32 {
            c.insert(id, rs(1));
            assert!(c.get(id).is_some(), "id {id} must be cacheable");
        }
        // Degenerate: zero capacity still yields one (empty) shard.
        assert_eq!(StripedCache::new(CachePolicy::Lru, 0, 8).n_shards(), 1);
    }
}
