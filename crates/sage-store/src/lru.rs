//! LRU cache of decoded chunks with exported hit/miss statistics.
//!
//! Decoding a chunk costs a mapper-scale amount of CPU (and, in the
//! SSD timing mode, a device read); the engine keeps the most recently
//! used decoded chunks pinned in memory. Capacity is counted in
//! chunks: chunk population is fixed at encode time, so chunk count is
//! a faithful proxy for memory.

use sage_genomics::ReadSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Shared, thread-safe counters (updated outside the cache lock).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` evictions.
    pub fn evicted(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A least-recently-used cache keyed by chunk id.
///
/// Recency is tracked with a monotone tick per entry; eviction scans
/// for the minimum. With the few dozen to few hundred resident chunks
/// a store realistically pins, the O(capacity) scan is cheaper than
/// maintaining an intrusive list — and it keeps the structure
/// trivially correct under the engine's lock.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u32, (u64, Arc<ReadSet>)>,
}

impl LruCache {
    /// A cache holding at most `capacity` decoded chunks.
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident chunk count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a chunk, refreshing its recency on hit.
    pub fn get(&mut self, chunk_id: u32) -> Option<Arc<ReadSet>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&chunk_id).map(|(t, rs)| {
            *t = tick;
            Arc::clone(rs)
        })
    }

    /// Inserts a decoded chunk, evicting the least recently used entry
    /// if the cache is full. Returns the number of evictions (0 or 1;
    /// 0-capacity caches store nothing and evict nothing).
    pub fn insert(&mut self, chunk_id: u32, reads: Arc<ReadSet>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&chunk_id) {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                evicted = 1;
            }
        }
        self.entries.insert(chunk_id, (self.tick, reads));
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(n: usize) -> Arc<ReadSet> {
        let mut set = ReadSet::new();
        for _ in 0..n {
            set.push(sage_genomics::Read::from_seq("ACGT".parse().unwrap()));
        }
        Arc::new(set)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(0, rs(1));
        c.insert(1, rs(2));
        assert!(c.get(0).is_some()); // 0 is now fresher than 1
        assert_eq!(c.insert(2, rs(3)), 1); // evicts 1
        assert!(c.get(1).is_none());
        assert!(c.get(0).is_some());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn reinserting_resident_chunk_evicts_nothing() {
        let mut c = LruCache::new(2);
        c.insert(0, rs(1));
        c.insert(1, rs(1));
        assert_eq!(c.insert(1, rs(2)), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().len(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(5, rs(1)), 0);
        assert!(c.get(5).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn hit_rate_math() {
        let stats = CacheStats::default();
        stats.hit();
        stats.hit();
        stats.hit();
        stats.miss();
        let snap = stats.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
    }
}
