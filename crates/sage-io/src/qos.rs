//! Multi-tenant scheduling policies for the virtual-time device
//! queues.
//!
//! The eager [`VirtualScheduler`](crate::sched::VirtualScheduler)
//! dispatch places charges the instant they are submitted — which *is*
//! FIFO service when submissions arrive in virtual-time order. Serving
//! tenants with different priorities, weights, or deadlines needs the
//! opposite: charges wait in per-device pending queues and the device,
//! each time it frees up, picks which queued charge to serve next.
//! That pick is this module's [`SchedPolicy`] trait; the queues
//! themselves live in the scheduler
//! ([`VirtualScheduler::enqueue`](crate::sched::VirtualScheduler::enqueue)
//! / [`advance_to`](crate::sched::VirtualScheduler::advance_to) /
//! [`flush`](crate::sched::VirtualScheduler::flush)).
//!
//! Every policy is expressed the same way: at enqueue time the policy
//! assigns each charge a scalar *key* (lower serves first, ties broken
//! by submission order), and when a device frees it serves the
//! smallest-keyed charge among those that have already arrived. This
//! keeps the queued path exactly as deterministic as the eager one —
//! same inputs, same timeline, bit for bit.
//!
//! | Policy | Key | Behavior |
//! |---|---|---|
//! | [`Fifo`] | constant | submission order; bit-identical to eager dispatch |
//! | [`StrictPriority`] | `255 − priority` | higher [`SchedTag::priority`] always first |
//! | [`WeightedFair`] | SCFQ finish tag | device seconds shared ∝ [`SchedTag::weight`] |
//! | [`Deadline`] | `deadline_vt` | earliest [`SchedTag::deadline_vt`] first (EDF) |

use std::fmt;

/// Per-operation scheduling attributes, stamped by the submitting
/// tenant's registration.
///
/// The default tag (tenant 0, priority 0, weight 1, no deadline) is
/// what every untagged submission carries; a fleet that never tags
/// anything therefore schedules exactly as before the QoS layer
/// existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedTag {
    /// Tenant index — keys the per-tenant busy/queue-delay accounting.
    pub tenant: usize,
    /// Strict priority class (higher serves first under
    /// [`StrictPriority`]).
    pub priority: u8,
    /// Fair share weight (device seconds are shared proportionally
    /// under [`WeightedFair`]); clamped to a small positive minimum.
    pub weight: f64,
    /// Absolute completion deadline on the virtual timeline (EDF order
    /// under [`Deadline`]); `INFINITY` means "no deadline".
    pub deadline_vt: f64,
}

impl Default for SchedTag {
    fn default() -> SchedTag {
        SchedTag {
            tenant: 0,
            priority: 0,
            weight: 1.0,
            deadline_vt: f64::INFINITY,
        }
    }
}

impl SchedTag {
    /// The tag for `tenant` with the remaining attributes defaulted.
    pub fn for_tenant(tenant: usize) -> SchedTag {
        SchedTag {
            tenant,
            ..SchedTag::default()
        }
    }
}

/// Weights below this are clamped up so a mis-configured zero weight
/// cannot produce infinite finish tags.
const MIN_WEIGHT: f64 = 1e-9;

/// How a device picks the next pending charge to serve.
///
/// The contract: [`enqueue_key`](SchedPolicy::enqueue_key) assigns
/// each charge a key when it joins a device's pending queue; the
/// device serves the smallest key among the charges that have arrived
/// by the time it frees up, breaking ties by submission sequence.
/// [`on_service`](SchedPolicy::on_service) is called as each charge
/// begins service so stateful policies (SCFQ virtual clocks) can
/// advance.
///
/// Keys must never be NaN — every built-in policy guarantees this and
/// custom policies must too, or the pending-queue ordering becomes
/// unspecified.
///
/// ```
/// use sage_io::qos::{SchedPolicyKind, SchedTag};
/// use sage_io::sched::{DeviceCharge, VirtualScheduler};
///
/// // Two tenants share one device under strict priority: the
/// // high-priority charge submitted *later* is served *first*.
/// let mut s = VirtualScheduler::with_policy(1, SchedPolicyKind::StrictPriority);
/// let lo = SchedTag { tenant: 0, priority: 0, ..SchedTag::default() };
/// let hi = SchedTag { tenant: 1, priority: 7, ..SchedTag::default() };
/// let blocker = [DeviceCharge { device: 0, seconds: 1.0 }];
/// s.enqueue(0, 0.0, &blocker, lo); // in service at t=0
/// s.enqueue(1, 0.1, &blocker, lo); // queued
/// s.enqueue(2, 0.2, &blocker, hi); // queued, higher priority
/// let done = s.flush();
/// // The blocker finishes at 1.0; the high-priority op jumps the
/// // earlier-submitted low-priority one.
/// assert_eq!(done.iter().map(|r| r.user_data).collect::<Vec<_>>(), [0, 2, 1]);
/// assert_eq!(done[1].dispatch.started_vt, 1.0);
/// ```
pub trait SchedPolicy: Send + fmt::Debug {
    /// Display label ("fifo", "strict_priority", …).
    fn label(&self) -> &'static str;

    /// The key for one charge of `seconds` device time entering
    /// `device`'s pending queue under `tag`.
    fn enqueue_key(&mut self, device: usize, tag: &SchedTag, seconds: f64) -> f64;

    /// A charge with `key` began service on `device`.
    fn on_service(&mut self, device: usize, key: f64) {
        let _ = (device, key);
    }
}

/// First in, first out — the default, and bit-identical to the eager
/// dispatch path (property-gated in `tests/prop_qos.rs`).
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl SchedPolicy for Fifo {
    fn label(&self) -> &'static str {
        "fifo"
    }

    fn enqueue_key(&mut self, _device: usize, _tag: &SchedTag, _seconds: f64) -> f64 {
        0.0
    }
}

/// Higher [`SchedTag::priority`] always serves first; submission order
/// within a class.
#[derive(Debug, Default, Clone, Copy)]
pub struct StrictPriority;

impl SchedPolicy for StrictPriority {
    fn label(&self) -> &'static str {
        "strict_priority"
    }

    fn enqueue_key(&mut self, _device: usize, tag: &SchedTag, _seconds: f64) -> f64 {
        f64::from(u8::MAX - tag.priority)
    }
}

/// Self-clocked weighted fair queueing (SCFQ) over per-tenant device
/// seconds.
///
/// Each device keeps a virtual clock `v` — the finish tag of the
/// charge most recently started. A charge from tenant `t` with demand
/// `s` gets start tag `max(v, F_last[t])` and finish tag `start +
/// s / weight`; devices serve the smallest finish tag. Backlogged
/// tenants therefore receive device seconds proportionally to their
/// weights, and an idle tenant's share is redistributed (the clock
/// catches up, so returning tenants are not owed the past).
#[derive(Debug, Default)]
pub struct WeightedFair {
    /// Per-device virtual clock: finish tag of the last charge to
    /// begin service.
    v: Vec<f64>,
    /// `[device][tenant]` finish tag of the tenant's last enqueued
    /// charge — consecutive charges from one tenant form a chain.
    f_last: Vec<Vec<f64>>,
}

impl WeightedFair {
    fn slot(&mut self, device: usize, tenant: usize) -> (&mut f64, &mut f64) {
        if self.v.len() <= device {
            self.v.resize(device + 1, 0.0);
            self.f_last.resize_with(device + 1, Vec::new);
        }
        let row = &mut self.f_last[device];
        if row.len() <= tenant {
            row.resize(tenant + 1, 0.0);
        }
        (&mut self.v[device], &mut row[tenant])
    }
}

impl SchedPolicy for WeightedFair {
    fn label(&self) -> &'static str {
        "weighted_fair"
    }

    fn enqueue_key(&mut self, device: usize, tag: &SchedTag, seconds: f64) -> f64 {
        let weight = tag.weight.max(MIN_WEIGHT);
        let (v, f_last) = self.slot(device, tag.tenant);
        let start = v.max(*f_last);
        let finish = start + seconds / weight;
        *f_last = finish;
        finish
    }

    fn on_service(&mut self, device: usize, key: f64) {
        let (v, _) = self.slot(device, 0);
        *v = v.max(key);
    }
}

/// Earliest deadline first on [`SchedTag::deadline_vt`] (derived from
/// the tenant's SLO by the client layer: `submit + slo`).
#[derive(Debug, Default, Clone, Copy)]
pub struct Deadline;

impl SchedPolicy for Deadline {
    fn label(&self) -> &'static str {
        "deadline"
    }

    fn enqueue_key(&mut self, _device: usize, tag: &SchedTag, _seconds: f64) -> f64 {
        tag.deadline_vt
    }
}

/// Config-friendly policy selector ([`IoConfig`](crate::reactor::IoConfig)
/// stays `Copy`/`Eq`); [`policy`](SchedPolicyKind::policy) instantiates
/// the boxed implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicyKind {
    /// [`Fifo`].
    #[default]
    Fifo,
    /// [`StrictPriority`].
    StrictPriority,
    /// [`WeightedFair`].
    WeightedFair,
    /// [`Deadline`].
    Deadline,
}

impl SchedPolicyKind {
    /// Every selectable policy, in display order.
    pub const ALL: [SchedPolicyKind; 4] = [
        SchedPolicyKind::Fifo,
        SchedPolicyKind::StrictPriority,
        SchedPolicyKind::WeightedFair,
        SchedPolicyKind::Deadline,
    ];

    /// Display label (matches [`SchedPolicy::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicyKind::Fifo => "fifo",
            SchedPolicyKind::StrictPriority => "strict_priority",
            SchedPolicyKind::WeightedFair => "weighted_fair",
            SchedPolicyKind::Deadline => "deadline",
        }
    }

    /// Instantiates the policy.
    pub fn policy(&self) -> Box<dyn SchedPolicy> {
        match self {
            SchedPolicyKind::Fifo => Box::new(Fifo),
            SchedPolicyKind::StrictPriority => Box::new(StrictPriority),
            SchedPolicyKind::WeightedFair => Box::new(WeightedFair::default()),
            SchedPolicyKind::Deadline => Box::new(Deadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tag_is_the_neutral_tenant() {
        let t = SchedTag::default();
        assert_eq!(t.tenant, 0);
        assert_eq!(t.priority, 0);
        assert_eq!(t.weight, 1.0);
        assert!(t.deadline_vt.is_infinite());
        assert_eq!(SchedTag::for_tenant(3).tenant, 3);
    }

    #[test]
    fn kinds_instantiate_matching_policies() {
        for kind in SchedPolicyKind::ALL {
            assert_eq!(kind.policy().label(), kind.label());
        }
        assert_eq!(SchedPolicyKind::default(), SchedPolicyKind::Fifo);
    }

    #[test]
    fn strict_priority_orders_by_class() {
        let mut p = StrictPriority;
        let hi = SchedTag {
            priority: 9,
            ..SchedTag::default()
        };
        let lo = SchedTag {
            priority: 1,
            ..SchedTag::default()
        };
        assert!(p.enqueue_key(0, &hi, 1.0) < p.enqueue_key(0, &lo, 1.0));
    }

    #[test]
    fn weighted_fair_finish_tags_scale_inversely_with_weight() {
        let mut p = WeightedFair::default();
        let heavy = SchedTag {
            tenant: 0,
            weight: 4.0,
            ..SchedTag::default()
        };
        let light = SchedTag {
            tenant: 1,
            weight: 1.0,
            ..SchedTag::default()
        };
        // Same demand: the heavy tenant's finish tag is 4× closer.
        assert_eq!(p.enqueue_key(0, &heavy, 1.0), 0.25);
        assert_eq!(p.enqueue_key(0, &light, 1.0), 1.0);
        // Back-to-back charges from one tenant chain off its own
        // previous finish tag.
        assert_eq!(p.enqueue_key(0, &heavy, 1.0), 0.5);
        // A service advances the device clock: later enqueues start
        // from it, not from zero.
        p.on_service(0, 1.0);
        assert_eq!(p.enqueue_key(0, &light, 1.0), 2.0);
    }

    #[test]
    fn zero_weight_is_clamped_finite() {
        let mut p = WeightedFair::default();
        let broken = SchedTag {
            weight: 0.0,
            ..SchedTag::default()
        };
        assert!(p.enqueue_key(0, &broken, 1.0).is_finite());
    }

    #[test]
    fn deadline_key_is_the_deadline() {
        let mut p = Deadline;
        let t = SchedTag {
            deadline_vt: 7.5,
            ..SchedTag::default()
        };
        assert_eq!(p.enqueue_key(0, &t, 1.0), 7.5);
        assert!(Deadline
            .enqueue_key(0, &SchedTag::default(), 1.0)
            .is_infinite());
    }
}
