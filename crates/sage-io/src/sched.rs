//! Virtual-time device scheduling.
//!
//! The device models under the reactor report *service* seconds per
//! command; turning service times into request latencies requires a
//! notion of queueing — a device can only serve one extent read at a
//! time, so concurrent requests to the same device wait for each
//! other. The [`VirtualScheduler`] keeps one virtual clock per device
//! (`free_at`) and assigns every request a start/completion instant in
//! virtual seconds. Charges to *different* devices within one request
//! run in parallel (that is the point of striping chunk extents across
//! devices); charges to the *same* device serialize.
//!
//! Virtual time is decoupled from wall-clock time on purpose: the
//! sweep harnesses stay deterministic and CI-robust, while queue depth
//! and device count still shape latency exactly as they would on real
//! hardware.

/// Device seconds one operation charged to one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCharge {
    /// Index of the charged device.
    pub device: usize,
    /// Service seconds the device spent.
    pub seconds: f64,
}

/// One charge's service window on the virtual timeline — the
/// per-device decomposition of a [`Dispatch`].
///
/// Intervals are produced by [`VirtualScheduler::dispatch_traced`]
/// through the *same* arithmetic as the untraced path, so a traced
/// run's instants are bit-identical to an untraced one. `seconds` is
/// the charge's service demand as dispatched (`end_vt` equals
/// `start_vt + seconds` as computed by the scheduler; recomputing the
/// difference in floating point may differ in the last ulp, which is
/// why the demand is carried explicitly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeInterval {
    /// Device that served the charge.
    pub device: usize,
    /// Service start instant (virtual seconds).
    pub start_vt: f64,
    /// Service completion instant (virtual seconds).
    pub end_vt: f64,
    /// Service seconds charged (the original demand).
    pub seconds: f64,
}

/// Where one request landed on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// When the first charged device began service (equals the submit
    /// instant for an uncharged — e.g. fully cached — request).
    pub started_vt: f64,
    /// When the last charged device finished service.
    pub completed_vt: f64,
    /// Total device seconds across all charges.
    pub device_seconds: f64,
    /// The device that finished the request (completion-queue routing
    /// key); 0 when nothing was charged.
    pub device: usize,
}

/// Per-device virtual clocks plus busy accounting.
#[derive(Debug)]
pub struct VirtualScheduler {
    free_at: Vec<f64>,
    busy: Vec<f64>,
    dispatched: u64,
}

impl VirtualScheduler {
    /// A scheduler over `n_devices` devices (at least 1 is kept so
    /// uncharged workloads still have a completion-queue to land on).
    pub fn new(n_devices: usize) -> VirtualScheduler {
        let n = n_devices.max(1);
        VirtualScheduler {
            free_at: vec![0.0; n],
            busy: vec![0.0; n],
            dispatched: 0,
        }
    }

    /// Device count.
    pub fn n_devices(&self) -> usize {
        self.free_at.len()
    }

    /// Places one request's charges on the timeline.
    ///
    /// Each charge starts at `max(submit_vt, free_at[device])` — the
    /// device serves requests in dispatch order — and charges to
    /// distinct devices overlap. A request with no charges completes
    /// instantly at `submit_vt`.
    pub fn dispatch(&mut self, submit_vt: f64, charges: &[DeviceCharge]) -> Dispatch {
        self.dispatch_core(submit_vt, charges, None)
    }

    /// Like [`dispatch`](VirtualScheduler::dispatch), additionally
    /// returning the per-charge service windows.
    ///
    /// Both entry points run the *same* loop (`dispatch_core`
    /// internally), so the returned [`Dispatch`] — and every clock
    /// mutation — is bit-identical whether or not intervals are
    /// recorded: tracing never perturbs the timeline.
    pub fn dispatch_traced(
        &mut self,
        submit_vt: f64,
        charges: &[DeviceCharge],
    ) -> (Dispatch, Vec<ChargeInterval>) {
        let mut intervals = Vec::with_capacity(charges.len());
        let dispatch = self.dispatch_core(submit_vt, charges, Some(&mut intervals));
        (dispatch, intervals)
    }

    fn dispatch_core(
        &mut self,
        submit_vt: f64,
        charges: &[DeviceCharge],
        mut intervals: Option<&mut Vec<ChargeInterval>>,
    ) -> Dispatch {
        self.dispatched += 1;
        let mut started = f64::INFINITY;
        let mut completed = submit_vt;
        let mut total = 0.0;
        let mut device = 0;
        for c in charges {
            let d = c.device.min(self.free_at.len() - 1);
            let start = submit_vt.max(self.free_at[d]);
            let done = start + c.seconds;
            self.free_at[d] = done;
            self.busy[d] += c.seconds;
            started = started.min(start);
            if done >= completed {
                completed = done;
                device = d;
            }
            total += c.seconds;
            if let Some(out) = intervals.as_deref_mut() {
                out.push(ChargeInterval {
                    device: d,
                    start_vt: start,
                    end_vt: done,
                    seconds: c.seconds,
                });
            }
        }
        Dispatch {
            started_vt: if started.is_finite() {
                started
            } else {
                submit_vt
            },
            completed_vt: completed,
            device_seconds: total,
            device,
        }
    }

    /// Busy (service) seconds accumulated per device.
    pub fn busy_seconds(&self) -> &[f64] {
        &self.busy
    }

    /// The latest instant any device is booked to — the virtual
    /// makespan of everything dispatched so far.
    pub fn horizon(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Requests dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Per-device utilization over the makespan: `busy[d] / horizon`
    /// (all zeros before anything was charged).
    pub fn utilization(&self) -> Vec<f64> {
        let horizon = self.horizon();
        if horizon <= 0.0 {
            return vec![0.0; self.busy.len()];
        }
        self.busy.iter().map(|b| b / horizon).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(device: usize, seconds: f64) -> DeviceCharge {
        DeviceCharge { device, seconds }
    }

    #[test]
    fn same_device_serializes() {
        let mut s = VirtualScheduler::new(2);
        let a = s.dispatch(0.0, &[charge(0, 1.0)]);
        let b = s.dispatch(0.0, &[charge(0, 1.0)]);
        assert_eq!(a.completed_vt, 1.0);
        // b arrived at 0 but waits behind a on device 0.
        assert_eq!(b.started_vt, 1.0);
        assert_eq!(b.completed_vt, 2.0);
        assert_eq!(s.horizon(), 2.0);
    }

    #[test]
    fn distinct_devices_overlap() {
        let mut s = VirtualScheduler::new(2);
        let d = s.dispatch(0.0, &[charge(0, 1.0), charge(1, 1.0)]);
        // Both devices served in parallel: the request finishes after
        // 1 virtual second, not 2, though 2 device-seconds were spent.
        assert_eq!(d.completed_vt, 1.0);
        assert_eq!(d.device_seconds, 2.0);
        assert_eq!(s.busy_seconds(), &[1.0, 1.0]);
    }

    #[test]
    fn uncharged_requests_complete_instantly() {
        let mut s = VirtualScheduler::new(3);
        let d = s.dispatch(5.0, &[]);
        assert_eq!(d.started_vt, 5.0);
        assert_eq!(d.completed_vt, 5.0);
        assert_eq!(d.device_seconds, 0.0);
        assert_eq!(s.horizon(), 0.0);
    }

    #[test]
    fn late_arrivals_leave_idle_gaps() {
        let mut s = VirtualScheduler::new(1);
        s.dispatch(0.0, &[charge(0, 1.0)]);
        // Arrives after the device went idle: starts at its own submit
        // instant, not at the device's last completion.
        let d = s.dispatch(10.0, &[charge(0, 1.0)]);
        assert_eq!(d.started_vt, 10.0);
        assert_eq!(d.completed_vt, 11.0);
        // Utilization reflects the gap: 2 busy seconds over 11.
        let u = s.utilization();
        assert!((u[0] - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn traced_dispatch_is_bit_identical_and_decomposes() {
        let charges = [charge(0, 0.5), charge(1, 0.25), charge(0, 0.125)];
        let mut plain = VirtualScheduler::new(2);
        let mut traced = VirtualScheduler::new(2);
        let a = plain.dispatch(1.0, &charges);
        let (b, intervals) = traced.dispatch_traced(1.0, &charges);
        assert_eq!(a, b);
        assert_eq!(plain.busy_seconds(), traced.busy_seconds());
        assert_eq!(plain.horizon(), traced.horizon());
        // One interval per charge, carrying the exact demand, with
        // end = start + seconds as the scheduler computed it.
        assert_eq!(intervals.len(), charges.len());
        for (iv, c) in intervals.iter().zip(&charges) {
            assert_eq!(iv.seconds, c.seconds);
            assert_eq!(iv.end_vt, iv.start_vt + iv.seconds);
        }
        // Same-device charges serialize within the request.
        assert_eq!(intervals[2].start_vt, intervals[0].end_vt);
        // Min start / max end reconstruct the dispatch.
        let started = intervals
            .iter()
            .map(|i| i.start_vt)
            .fold(f64::INFINITY, f64::min);
        let done = intervals.iter().map(|i| i.end_vt).fold(0.0, f64::max);
        assert_eq!(started, b.started_vt);
        assert_eq!(done, b.completed_vt);
    }

    #[test]
    fn out_of_range_device_clamps() {
        let mut s = VirtualScheduler::new(1);
        let d = s.dispatch(0.0, &[charge(9, 1.0)]);
        assert_eq!(d.device, 0);
        assert_eq!(s.busy_seconds(), &[1.0]);
    }
}
