//! Virtual-time device scheduling.
//!
//! The device models under the reactor report *service* seconds per
//! command; turning service times into request latencies requires a
//! notion of queueing — a device can only serve one extent read at a
//! time, so concurrent requests to the same device wait for each
//! other. The [`VirtualScheduler`] keeps one virtual clock per device
//! (`free_at`) and assigns every request a start/completion instant in
//! virtual seconds. Charges to *different* devices within one request
//! run in parallel (that is the point of striping chunk extents across
//! devices); charges to the *same* device serialize.
//!
//! Virtual time is decoupled from wall-clock time on purpose: the
//! sweep harnesses stay deterministic and CI-robust, while queue depth
//! and device count still shape latency exactly as they would on real
//! hardware.
//!
//! Two dispatch disciplines share the clocks:
//!
//! - **Eager** ([`dispatch`](VirtualScheduler::dispatch) /
//!   [`dispatch_tagged`](VirtualScheduler::dispatch_tagged)): charges
//!   are placed the instant they are submitted — FIFO service when
//!   submissions arrive in virtual-time order. This is the original
//!   path and stays bit-identical.
//! - **Queued** ([`enqueue`](VirtualScheduler::enqueue) /
//!   [`advance_to`](VirtualScheduler::advance_to) /
//!   [`flush`](VirtualScheduler::flush)): charges wait in per-device
//!   pending queues and a [`SchedPolicy`] picks which to serve each
//!   time a device frees up, so a queued high-priority charge can
//!   start before an earlier-submitted low-priority one. Resolution is
//!   lazy — a pick is only final once the arrival frontier has passed
//!   the device's decision instant — which keeps reordering policies
//!   exactly as deterministic as FIFO.

use crate::qos::{SchedPolicy, SchedPolicyKind, SchedTag};
use std::collections::HashMap;

/// Device seconds one operation charged to one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCharge {
    /// Index of the charged device.
    pub device: usize,
    /// Service seconds the device spent.
    pub seconds: f64,
}

/// One charge's service window on the virtual timeline — the
/// per-device decomposition of a [`Dispatch`].
///
/// Intervals are produced by [`VirtualScheduler::dispatch_traced`]
/// through the *same* arithmetic as the untraced path, so a traced
/// run's instants are bit-identical to an untraced one. `seconds` is
/// the charge's service demand as dispatched (`end_vt` equals
/// `start_vt + seconds` as computed by the scheduler; recomputing the
/// difference in floating point may differ in the last ulp, which is
/// why the demand is carried explicitly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeInterval {
    /// Device that served the charge.
    pub device: usize,
    /// Service start instant (virtual seconds).
    pub start_vt: f64,
    /// Service completion instant (virtual seconds).
    pub end_vt: f64,
    /// Service seconds charged (the original demand).
    pub seconds: f64,
}

/// Where one request landed on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// When the first charged device began service (equals the submit
    /// instant for an uncharged — e.g. fully cached — request).
    pub started_vt: f64,
    /// When the last charged device finished service.
    pub completed_vt: f64,
    /// Total device seconds across all charges.
    pub device_seconds: f64,
    /// The device that finished the request (completion-queue routing
    /// key); 0 when nothing was charged.
    pub device: usize,
}

/// One operation fully placed by the queued dispatch path — what
/// [`VirtualScheduler::advance_to`] / [`VirtualScheduler::flush`]
/// return once every charge of a pending operation has been served.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedOp {
    /// The handle [`VirtualScheduler::enqueue`] returned.
    pub handle: u64,
    /// Caller token, passed through verbatim.
    pub user_data: u64,
    /// The operation's submit instant.
    pub submit_vt: f64,
    /// Tenant the operation was charged to.
    pub tenant: usize,
    /// Where the operation landed on the timeline — same arithmetic,
    /// field for field, as the eager path's [`Dispatch`].
    pub dispatch: Dispatch,
    /// Per-charge service windows in original charge order.
    pub intervals: Vec<ChargeInterval>,
}

/// One charge waiting in a device's pending queue.
#[derive(Debug)]
struct PendingCharge {
    /// Key into the pending-op table.
    op: u64,
    /// Index of this charge within its operation.
    charge_idx: usize,
    submit_vt: f64,
    seconds: f64,
    /// The policy's key: smallest serves first.
    key: f64,
    /// Global enqueue sequence: the deterministic tie-break.
    seq: u64,
    tenant: usize,
}

/// One operation with charges still pending.
#[derive(Debug)]
struct PendingOp {
    user_data: u64,
    submit_vt: f64,
    tenant: usize,
    /// Charges not yet served.
    left: usize,
    /// Service windows filled in as charges resolve, by charge index.
    intervals: Vec<Option<ChargeInterval>>,
}

/// Per-device virtual clocks plus per-tenant busy accounting and the
/// policy-driven pending queues.
#[derive(Debug)]
pub struct VirtualScheduler {
    free_at: Vec<f64>,
    /// Busy seconds per tenant per device (`[tenant][device]`, rows
    /// grown on first charge); [`busy_seconds`](Self::busy_seconds)
    /// folds the rows in tenant order, so a single-tenant run's
    /// per-device totals accumulate exactly as the pre-QoS scheduler's
    /// single counter did.
    tenant_busy: Vec<Vec<f64>>,
    /// Seconds charges spent waiting between submit and service start,
    /// per tenant.
    queue_delay: Vec<f64>,
    dispatched: u64,
    policy: Box<dyn SchedPolicy>,
    /// Enqueue sequence for deterministic tie-breaks.
    seq: u64,
    next_op: u64,
    /// Per-device pending queues (queued dispatch path only).
    queues: Vec<Vec<PendingCharge>>,
    ops: HashMap<u64, PendingOp>,
    /// Uncharged operations resolve instantly and wait here for the
    /// next [`advance_to`](Self::advance_to) to hand them back.
    ready: Vec<ResolvedOp>,
}

impl VirtualScheduler {
    /// A FIFO scheduler over `n_devices` devices (at least 1 is kept
    /// so uncharged workloads still have a completion-queue to land
    /// on).
    pub fn new(n_devices: usize) -> VirtualScheduler {
        VirtualScheduler::with_policy(n_devices, SchedPolicyKind::Fifo)
    }

    /// A scheduler whose queued dispatch path serves pending charges
    /// in `policy` order. The eager path is policy-independent (it
    /// *is* FIFO by construction).
    pub fn with_policy(n_devices: usize, policy: SchedPolicyKind) -> VirtualScheduler {
        let n = n_devices.max(1);
        VirtualScheduler {
            free_at: vec![0.0; n],
            tenant_busy: Vec::new(),
            queue_delay: Vec::new(),
            dispatched: 0,
            policy: policy.policy(),
            seq: 0,
            next_op: 0,
            queues: (0..n).map(|_| Vec::new()).collect(),
            ops: HashMap::new(),
            ready: Vec::new(),
        }
    }

    /// Device count.
    pub fn n_devices(&self) -> usize {
        self.free_at.len()
    }

    /// The scheduling policy's display label.
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }

    /// Grows the per-tenant rows to cover `tenant` and returns the
    /// busy row.
    fn tenant_row(&mut self, tenant: usize) -> &mut Vec<f64> {
        let n = self.free_at.len();
        if self.tenant_busy.len() <= tenant {
            self.tenant_busy.resize_with(tenant + 1, || vec![0.0; n]);
            self.queue_delay.resize(tenant + 1, 0.0);
        }
        &mut self.tenant_busy[tenant]
    }

    /// Places one request's charges on the timeline immediately
    /// (eager FIFO dispatch), billing tenant 0.
    ///
    /// Each charge starts at `max(submit_vt, free_at[device])` — the
    /// device serves requests in dispatch order — and charges to
    /// distinct devices overlap. A request with no charges completes
    /// instantly at `submit_vt`.
    pub fn dispatch(&mut self, submit_vt: f64, charges: &[DeviceCharge]) -> Dispatch {
        self.dispatch_core(submit_vt, charges, 0, None)
    }

    /// Like [`dispatch`](VirtualScheduler::dispatch), additionally
    /// returning the per-charge service windows.
    ///
    /// Both entry points run the *same* loop (`dispatch_core`
    /// internally), so the returned [`Dispatch`] — and every clock
    /// mutation — is bit-identical whether or not intervals are
    /// recorded: tracing never perturbs the timeline.
    pub fn dispatch_traced(
        &mut self,
        submit_vt: f64,
        charges: &[DeviceCharge],
    ) -> (Dispatch, Vec<ChargeInterval>) {
        let mut intervals = Vec::with_capacity(charges.len());
        let dispatch = self.dispatch_core(submit_vt, charges, 0, Some(&mut intervals));
        (dispatch, intervals)
    }

    /// Eager dispatch billed to `tenant` instead of tenant 0 — the
    /// timeline arithmetic is identical to
    /// [`dispatch`](VirtualScheduler::dispatch); only the busy /
    /// queue-delay attribution differs.
    pub fn dispatch_tagged(
        &mut self,
        submit_vt: f64,
        charges: &[DeviceCharge],
        tenant: usize,
    ) -> Dispatch {
        self.dispatch_core(submit_vt, charges, tenant, None)
    }

    /// [`dispatch_tagged`](VirtualScheduler::dispatch_tagged) with
    /// per-charge service windows.
    pub fn dispatch_tagged_traced(
        &mut self,
        submit_vt: f64,
        charges: &[DeviceCharge],
        tenant: usize,
    ) -> (Dispatch, Vec<ChargeInterval>) {
        let mut intervals = Vec::with_capacity(charges.len());
        let dispatch = self.dispatch_core(submit_vt, charges, tenant, Some(&mut intervals));
        (dispatch, intervals)
    }

    fn dispatch_core(
        &mut self,
        submit_vt: f64,
        charges: &[DeviceCharge],
        tenant: usize,
        mut intervals: Option<&mut Vec<ChargeInterval>>,
    ) -> Dispatch {
        self.dispatched += 1;
        let n = self.free_at.len();
        self.tenant_row(tenant);
        let mut started = f64::INFINITY;
        let mut completed = submit_vt;
        let mut total = 0.0;
        let mut device = 0;
        for c in charges {
            let d = c.device.min(n - 1);
            let start = submit_vt.max(self.free_at[d]);
            let done = start + c.seconds;
            self.free_at[d] = done;
            self.tenant_busy[tenant][d] += c.seconds;
            self.queue_delay[tenant] += start - submit_vt;
            started = started.min(start);
            if done >= completed {
                completed = done;
                device = d;
            }
            total += c.seconds;
            if let Some(out) = intervals.as_deref_mut() {
                out.push(ChargeInterval {
                    device: d,
                    start_vt: start,
                    end_vt: done,
                    seconds: c.seconds,
                });
            }
        }
        Dispatch {
            started_vt: if started.is_finite() {
                started
            } else {
                submit_vt
            },
            completed_vt: completed,
            device_seconds: total,
            device,
        }
    }

    // -----------------------------------------------------------------
    // Queued dispatch: per-device pending queues in policy order
    // -----------------------------------------------------------------

    /// Queues one request's charges into the per-device pending queues
    /// instead of placing them immediately; returns a handle
    /// identifying the operation in the [`ResolvedOp`]s that
    /// [`advance_to`](Self::advance_to) / [`flush`](Self::flush) hand
    /// back.
    ///
    /// The policy assigns each charge its key now (so SCFQ tags see
    /// the state at arrival), but nothing is placed on the timeline
    /// yet. An uncharged request resolves instantly at `submit_vt` and
    /// is returned by the next `advance_to`/`flush` call.
    pub fn enqueue(
        &mut self,
        user_data: u64,
        submit_vt: f64,
        charges: &[DeviceCharge],
        tag: SchedTag,
    ) -> u64 {
        self.dispatched += 1;
        self.tenant_row(tag.tenant);
        let handle = self.next_op;
        self.next_op += 1;
        if charges.is_empty() {
            self.ready.push(ResolvedOp {
                handle,
                user_data,
                submit_vt,
                tenant: tag.tenant,
                dispatch: Dispatch {
                    started_vt: submit_vt,
                    completed_vt: submit_vt,
                    device_seconds: 0.0,
                    device: 0,
                },
                intervals: Vec::new(),
            });
            return handle;
        }
        self.ops.insert(
            handle,
            PendingOp {
                user_data,
                submit_vt,
                tenant: tag.tenant,
                left: charges.len(),
                intervals: vec![None; charges.len()],
            },
        );
        let n = self.free_at.len();
        for (charge_idx, c) in charges.iter().enumerate() {
            let d = c.device.min(n - 1);
            let key = self.policy.enqueue_key(d, &tag, c.seconds);
            let seq = self.seq;
            self.seq += 1;
            self.queues[d].push(PendingCharge {
                op: handle,
                charge_idx,
                submit_vt,
                seconds: c.seconds,
                key,
                seq,
                tenant: tag.tenant,
            });
        }
        handle
    }

    /// Resolves queued service while every decision is final, i.e.
    /// while some device's next decision instant lies strictly before
    /// `frontier`, and returns the operations that fully completed.
    ///
    /// The caller's contract: all arrivals with `submit_vt < frontier`
    /// have already been [`enqueue`](Self::enqueue)d (open-loop
    /// drivers submit in nondecreasing virtual time, so passing the
    /// current arrival instant satisfies this). Under that contract
    /// the pick each device makes at its decision instant can never be
    /// changed by a future arrival, which is what keeps reordering
    /// policies bit-deterministic.
    ///
    /// Every operation whose completion instant is `< frontier` is
    /// guaranteed resolved on return (a charge completing by `t` must
    /// have started before `t`).
    pub fn advance_to(&mut self, frontier: f64) -> Vec<ResolvedOp> {
        let mut out = std::mem::take(&mut self.ready);
        loop {
            // The device with the earliest next decision instant (ties
            // to the lowest index) decides first.
            let mut best: Option<(f64, usize)> = None;
            for (d, q) in self.queues.iter().enumerate() {
                if q.is_empty() {
                    continue;
                }
                let min_submit = q.iter().map(|p| p.submit_vt).fold(f64::INFINITY, f64::min);
                let t = self.free_at[d].max(min_submit);
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, d));
                }
            }
            let Some((t, d)) = best else { break };
            if t >= frontier {
                break;
            }
            // Serve the smallest (key, seq) among the charges that
            // have arrived by the decision instant.
            let q = &self.queues[d];
            let mut pick = 0;
            let mut found = false;
            for (i, p) in q.iter().enumerate() {
                if p.submit_vt > t {
                    continue;
                }
                if !found {
                    pick = i;
                    found = true;
                    continue;
                }
                let (a, b) = (&q[i], &q[pick]);
                if a.key < b.key || (a.key == b.key && a.seq < b.seq) {
                    pick = i;
                }
            }
            debug_assert!(found, "decision instant implies an arrived charge");
            let p = self.queues[d].swap_remove(pick);
            let start = p.submit_vt.max(self.free_at[d]);
            let done = start + p.seconds;
            self.free_at[d] = done;
            self.tenant_busy[p.tenant][d] += p.seconds;
            self.queue_delay[p.tenant] += start - p.submit_vt;
            self.policy.on_service(d, p.key);
            let op = self.ops.get_mut(&p.op).expect("charge has a pending op");
            op.intervals[p.charge_idx] = Some(ChargeInterval {
                device: d,
                start_vt: start,
                end_vt: done,
                seconds: p.seconds,
            });
            op.left -= 1;
            if op.left == 0 {
                let op = self.ops.remove(&p.op).expect("pending op");
                out.push(resolve(p.op, op));
            }
        }
        out
    }

    /// Resolves everything still pending (end of arrivals).
    pub fn flush(&mut self) -> Vec<ResolvedOp> {
        self.advance_to(f64::INFINITY)
    }

    /// Charges still waiting in the pending queues.
    pub fn pending_charges(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Busy (service) seconds accumulated per device: the fold of the
    /// per-tenant rows in tenant order, so
    /// `tenant_busy_seconds()[t][d]` sums back to `busy_seconds()[d]`
    /// exactly (same additions, same order).
    pub fn busy_seconds(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.free_at.len()];
        for row in &self.tenant_busy {
            for (d, b) in row.iter().enumerate() {
                out[d] += b;
            }
        }
        out
    }

    /// Busy seconds per tenant per device (`[tenant][device]`; rows
    /// exist for every tenant that ever dispatched).
    pub fn tenant_busy_seconds(&self) -> &[Vec<f64>] {
        &self.tenant_busy
    }

    /// Seconds charges spent queued (service start minus submit,
    /// summed over charges) per tenant.
    pub fn tenant_queue_delay(&self) -> &[f64] {
        &self.queue_delay
    }

    /// The latest instant any device is booked to — the virtual
    /// makespan of everything dispatched so far.
    pub fn horizon(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Requests dispatched so far (queued requests count at enqueue).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Per-device utilization over the makespan: `busy[d] / horizon`
    /// (all zeros before anything was charged).
    pub fn utilization(&self) -> Vec<f64> {
        let horizon = self.horizon();
        let busy = self.busy_seconds();
        if horizon <= 0.0 {
            return vec![0.0; busy.len()];
        }
        busy.iter().map(|b| b / horizon).collect()
    }
}

/// Folds a fully-served pending op into its [`ResolvedOp`] with the
/// exact `dispatch_core` arithmetic: fold per-charge windows in
/// original charge order with `min` for the start and the
/// `done >= completed` rule for the completing device, starting from
/// `completed = submit_vt`.
fn resolve(handle: u64, op: PendingOp) -> ResolvedOp {
    let intervals: Vec<ChargeInterval> = op
        .intervals
        .into_iter()
        .map(|iv| iv.expect("all charges served"))
        .collect();
    let mut started = f64::INFINITY;
    let mut completed = op.submit_vt;
    let mut total = 0.0;
    let mut device = 0;
    for iv in &intervals {
        started = started.min(iv.start_vt);
        if iv.end_vt >= completed {
            completed = iv.end_vt;
            device = iv.device;
        }
        total += iv.seconds;
    }
    ResolvedOp {
        handle,
        user_data: op.user_data,
        submit_vt: op.submit_vt,
        tenant: op.tenant,
        dispatch: Dispatch {
            started_vt: if started.is_finite() {
                started
            } else {
                op.submit_vt
            },
            completed_vt: completed,
            device_seconds: total,
            device,
        },
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(device: usize, seconds: f64) -> DeviceCharge {
        DeviceCharge { device, seconds }
    }

    #[test]
    fn same_device_serializes() {
        let mut s = VirtualScheduler::new(2);
        let a = s.dispatch(0.0, &[charge(0, 1.0)]);
        let b = s.dispatch(0.0, &[charge(0, 1.0)]);
        assert_eq!(a.completed_vt, 1.0);
        // b arrived at 0 but waits behind a on device 0.
        assert_eq!(b.started_vt, 1.0);
        assert_eq!(b.completed_vt, 2.0);
        assert_eq!(s.horizon(), 2.0);
    }

    #[test]
    fn distinct_devices_overlap() {
        let mut s = VirtualScheduler::new(2);
        let d = s.dispatch(0.0, &[charge(0, 1.0), charge(1, 1.0)]);
        // Both devices served in parallel: the request finishes after
        // 1 virtual second, not 2, though 2 device-seconds were spent.
        assert_eq!(d.completed_vt, 1.0);
        assert_eq!(d.device_seconds, 2.0);
        assert_eq!(s.busy_seconds(), &[1.0, 1.0]);
    }

    #[test]
    fn uncharged_requests_complete_instantly() {
        let mut s = VirtualScheduler::new(3);
        let d = s.dispatch(5.0, &[]);
        assert_eq!(d.started_vt, 5.0);
        assert_eq!(d.completed_vt, 5.0);
        assert_eq!(d.device_seconds, 0.0);
        assert_eq!(s.horizon(), 0.0);
    }

    #[test]
    fn late_arrivals_leave_idle_gaps() {
        let mut s = VirtualScheduler::new(1);
        s.dispatch(0.0, &[charge(0, 1.0)]);
        // Arrives after the device went idle: starts at its own submit
        // instant, not at the device's last completion.
        let d = s.dispatch(10.0, &[charge(0, 1.0)]);
        assert_eq!(d.started_vt, 10.0);
        assert_eq!(d.completed_vt, 11.0);
        // Utilization reflects the gap: 2 busy seconds over 11.
        let u = s.utilization();
        assert!((u[0] - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn traced_dispatch_is_bit_identical_and_decomposes() {
        let charges = [charge(0, 0.5), charge(1, 0.25), charge(0, 0.125)];
        let mut plain = VirtualScheduler::new(2);
        let mut traced = VirtualScheduler::new(2);
        let a = plain.dispatch(1.0, &charges);
        let (b, intervals) = traced.dispatch_traced(1.0, &charges);
        assert_eq!(a, b);
        assert_eq!(plain.busy_seconds(), traced.busy_seconds());
        assert_eq!(plain.horizon(), traced.horizon());
        // One interval per charge, carrying the exact demand, with
        // end = start + seconds as the scheduler computed it.
        assert_eq!(intervals.len(), charges.len());
        for (iv, c) in intervals.iter().zip(&charges) {
            assert_eq!(iv.seconds, c.seconds);
            assert_eq!(iv.end_vt, iv.start_vt + iv.seconds);
        }
        // Same-device charges serialize within the request.
        assert_eq!(intervals[2].start_vt, intervals[0].end_vt);
        // Min start / max end reconstruct the dispatch.
        let started = intervals
            .iter()
            .map(|i| i.start_vt)
            .fold(f64::INFINITY, f64::min);
        let done = intervals.iter().map(|i| i.end_vt).fold(0.0, f64::max);
        assert_eq!(started, b.started_vt);
        assert_eq!(done, b.completed_vt);
    }

    #[test]
    fn out_of_range_device_clamps() {
        let mut s = VirtualScheduler::new(1);
        let d = s.dispatch(0.0, &[charge(9, 1.0)]);
        assert_eq!(d.device, 0);
        assert_eq!(s.busy_seconds(), &[1.0]);
    }

    #[test]
    fn tagged_dispatch_attributes_busy_per_tenant() {
        let mut s = VirtualScheduler::new(2);
        s.dispatch_tagged(0.0, &[charge(0, 1.0)], 0);
        s.dispatch_tagged(0.0, &[charge(0, 0.5), charge(1, 0.25)], 2);
        let by_tenant = s.tenant_busy_seconds();
        assert_eq!(by_tenant.len(), 3);
        assert_eq!(by_tenant[0], vec![1.0, 0.0]);
        assert_eq!(by_tenant[1], vec![0.0, 0.0]);
        assert_eq!(by_tenant[2], vec![0.5, 0.25]);
        // Device totals are the fold of the tenant rows.
        assert_eq!(s.busy_seconds(), &[1.5, 0.25]);
        // Tenant 2's device-0 charge waited behind tenant 0's.
        assert_eq!(s.tenant_queue_delay(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn queued_fifo_replays_eager_dispatch_bitwise() {
        // The queued path under FIFO must reproduce the eager path's
        // timeline exactly: same starts, same completions, same busy
        // accumulation — including multi-charge ops that serialize on
        // one device while overlapping on another.
        let stream: [(f64, Vec<DeviceCharge>); 5] = [
            (0.0, vec![charge(0, 0.5), charge(1, 0.25), charge(0, 0.125)]),
            (0.1, vec![charge(1, 0.5)]),
            (0.2, vec![]),
            (0.7, vec![charge(0, 0.25), charge(1, 0.03125)]),
            (2.0, vec![charge(0, 0.0625)]),
        ];
        let mut eager = VirtualScheduler::new(2);
        let eager_out: Vec<(Dispatch, Vec<ChargeInterval>)> = stream
            .iter()
            .map(|(vt, charges)| eager.dispatch_traced(*vt, charges))
            .collect();

        let mut queued = VirtualScheduler::with_policy(2, SchedPolicyKind::Fifo);
        let mut resolved = Vec::new();
        for (i, (vt, charges)) in stream.iter().enumerate() {
            queued.enqueue(i as u64, *vt, charges, SchedTag::default());
            resolved.extend(queued.advance_to(*vt));
        }
        resolved.extend(queued.flush());
        assert_eq!(resolved.len(), stream.len());
        resolved.sort_by_key(|r| r.user_data);
        for (r, (d, ivs)) in resolved.iter().zip(&eager_out) {
            assert_eq!(&r.dispatch, d);
            assert_eq!(&r.intervals, ivs);
        }
        assert_eq!(eager.busy_seconds(), queued.busy_seconds());
        assert_eq!(eager.horizon(), queued.horizon());
        assert_eq!(eager.dispatched(), queued.dispatched());
    }

    #[test]
    fn strict_priority_jumps_the_queue() {
        let mut s = VirtualScheduler::with_policy(1, SchedPolicyKind::StrictPriority);
        let lo = SchedTag::default();
        let hi = SchedTag {
            tenant: 1,
            priority: 5,
            ..SchedTag::default()
        };
        s.enqueue(0, 0.0, &[charge(0, 1.0)], lo); // in service
        s.enqueue(1, 0.1, &[charge(0, 1.0)], lo); // queued
        s.enqueue(2, 0.2, &[charge(0, 1.0)], hi); // queued, high prio
        let done = s.flush();
        let order: Vec<u64> = done.iter().map(|r| r.user_data).collect();
        assert_eq!(order, [0, 2, 1]);
        // Non-preemptive: the high-priority op waits for the charge in
        // service, then starts before the earlier low-priority one.
        assert_eq!(done[1].dispatch.started_vt, 1.0);
        assert_eq!(done[2].dispatch.started_vt, 2.0);
    }

    #[test]
    fn weighted_fair_shares_in_weight_proportion() {
        // Two backlogged tenants, weights 3:1, equal demands: over any
        // service prefix the heavy tenant accumulates ≈3× the busy
        // seconds.
        let mut s = VirtualScheduler::with_policy(1, SchedPolicyKind::WeightedFair);
        let heavy = SchedTag {
            tenant: 0,
            weight: 3.0,
            ..SchedTag::default()
        };
        let light = SchedTag {
            tenant: 1,
            weight: 1.0,
            ..SchedTag::default()
        };
        for i in 0..12u64 {
            s.enqueue(i, 0.0, &[charge(0, 1.0)], heavy);
            s.enqueue(100 + i, 0.0, &[charge(0, 1.0)], light);
        }
        // Resolve only the first 8 services (frontier bounds nothing
        // here — everything arrived at 0 — so cut by count instead).
        let done = s.flush();
        let first8: Vec<usize> = done.iter().take(8).map(|r| r.tenant).collect();
        let heavy_served = first8.iter().filter(|t| **t == 0).count();
        assert_eq!(
            heavy_served, 6,
            "3:1 weights serve 6 of 8 heavy: {first8:?}"
        );
        // All 24 seconds land somewhere; conservation is exact.
        assert_eq!(s.busy_seconds(), &[24.0]);
        assert_eq!(s.tenant_busy_seconds()[0][0], 12.0);
        assert_eq!(s.tenant_busy_seconds()[1][0], 12.0);
    }

    #[test]
    fn deadline_serves_urgent_first() {
        let mut s = VirtualScheduler::with_policy(1, SchedPolicyKind::Deadline);
        let relaxed = SchedTag {
            deadline_vt: 100.0,
            ..SchedTag::default()
        };
        let urgent = SchedTag {
            tenant: 1,
            deadline_vt: 2.0,
            ..SchedTag::default()
        };
        s.enqueue(0, 0.0, &[charge(0, 1.0)], relaxed);
        s.enqueue(1, 0.0, &[charge(0, 1.0)], relaxed);
        s.enqueue(2, 0.1, &[charge(0, 1.0)], urgent);
        let order: Vec<u64> = s.flush().iter().map(|r| r.user_data).collect();
        assert_eq!(order, [0, 2, 1]);
    }

    #[test]
    fn advance_respects_the_arrival_frontier() {
        let mut s = VirtualScheduler::with_policy(1, SchedPolicyKind::StrictPriority);
        s.enqueue(0, 0.0, &[charge(0, 1.0)], SchedTag::default());
        // The decision instant (0.0) is not strictly before the
        // frontier (0.0): nothing resolves — a later arrival at 0.0
        // could still win the pick.
        assert!(s.advance_to(0.0).is_empty());
        assert_eq!(s.pending_charges(), 1);
        // Past the frontier the pick is final.
        let done = s.advance_to(0.5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].dispatch.completed_vt, 1.0);
        assert_eq!(s.pending_charges(), 0);
    }

    #[test]
    fn uncharged_queued_ops_resolve_instantly() {
        let mut s = VirtualScheduler::with_policy(2, SchedPolicyKind::WeightedFair);
        s.enqueue(7, 3.0, &[], SchedTag::for_tenant(1));
        let done = s.flush();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].user_data, 7);
        assert_eq!(done[0].tenant, 1);
        assert_eq!(done[0].dispatch.started_vt, 3.0);
        assert_eq!(done[0].dispatch.completed_vt, 3.0);
        assert_eq!(done[0].dispatch.device_seconds, 0.0);
    }
}
