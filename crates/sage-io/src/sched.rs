//! Virtual-time device scheduling.
//!
//! The device models under the reactor report *service* seconds per
//! command; turning service times into request latencies requires a
//! notion of queueing — a device can only serve one extent read at a
//! time, so concurrent requests to the same device wait for each
//! other. The [`VirtualScheduler`] keeps one virtual clock per device
//! (`free_at`) and assigns every request a start/completion instant in
//! virtual seconds. Charges to *different* devices within one request
//! run in parallel (that is the point of striping chunk extents across
//! devices); charges to the *same* device serialize.
//!
//! Virtual time is decoupled from wall-clock time on purpose: the
//! sweep harnesses stay deterministic and CI-robust, while queue depth
//! and device count still shape latency exactly as they would on real
//! hardware.

/// Device seconds one operation charged to one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCharge {
    /// Index of the charged device.
    pub device: usize,
    /// Service seconds the device spent.
    pub seconds: f64,
}

/// Where one request landed on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// When the first charged device began service (equals the submit
    /// instant for an uncharged — e.g. fully cached — request).
    pub started_vt: f64,
    /// When the last charged device finished service.
    pub completed_vt: f64,
    /// Total device seconds across all charges.
    pub device_seconds: f64,
    /// The device that finished the request (completion-queue routing
    /// key); 0 when nothing was charged.
    pub device: usize,
}

/// Per-device virtual clocks plus busy accounting.
#[derive(Debug)]
pub struct VirtualScheduler {
    free_at: Vec<f64>,
    busy: Vec<f64>,
    dispatched: u64,
}

impl VirtualScheduler {
    /// A scheduler over `n_devices` devices (at least 1 is kept so
    /// uncharged workloads still have a completion-queue to land on).
    pub fn new(n_devices: usize) -> VirtualScheduler {
        let n = n_devices.max(1);
        VirtualScheduler {
            free_at: vec![0.0; n],
            busy: vec![0.0; n],
            dispatched: 0,
        }
    }

    /// Device count.
    pub fn n_devices(&self) -> usize {
        self.free_at.len()
    }

    /// Places one request's charges on the timeline.
    ///
    /// Each charge starts at `max(submit_vt, free_at[device])` — the
    /// device serves requests in dispatch order — and charges to
    /// distinct devices overlap. A request with no charges completes
    /// instantly at `submit_vt`.
    pub fn dispatch(&mut self, submit_vt: f64, charges: &[DeviceCharge]) -> Dispatch {
        self.dispatched += 1;
        let mut started = f64::INFINITY;
        let mut completed = submit_vt;
        let mut total = 0.0;
        let mut device = 0;
        for c in charges {
            let d = c.device.min(self.free_at.len() - 1);
            let start = submit_vt.max(self.free_at[d]);
            let done = start + c.seconds;
            self.free_at[d] = done;
            self.busy[d] += c.seconds;
            started = started.min(start);
            if done >= completed {
                completed = done;
                device = d;
            }
            total += c.seconds;
        }
        Dispatch {
            started_vt: if started.is_finite() {
                started
            } else {
                submit_vt
            },
            completed_vt: completed,
            device_seconds: total,
            device,
        }
    }

    /// Busy (service) seconds accumulated per device.
    pub fn busy_seconds(&self) -> &[f64] {
        &self.busy
    }

    /// The latest instant any device is booked to — the virtual
    /// makespan of everything dispatched so far.
    pub fn horizon(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Requests dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Per-device utilization over the makespan: `busy[d] / horizon`
    /// (all zeros before anything was charged).
    pub fn utilization(&self) -> Vec<f64> {
        let horizon = self.horizon();
        if horizon <= 0.0 {
            return vec![0.0; self.busy.len()];
        }
        self.busy.iter().map(|b| b / horizon).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(device: usize, seconds: f64) -> DeviceCharge {
        DeviceCharge { device, seconds }
    }

    #[test]
    fn same_device_serializes() {
        let mut s = VirtualScheduler::new(2);
        let a = s.dispatch(0.0, &[charge(0, 1.0)]);
        let b = s.dispatch(0.0, &[charge(0, 1.0)]);
        assert_eq!(a.completed_vt, 1.0);
        // b arrived at 0 but waits behind a on device 0.
        assert_eq!(b.started_vt, 1.0);
        assert_eq!(b.completed_vt, 2.0);
        assert_eq!(s.horizon(), 2.0);
    }

    #[test]
    fn distinct_devices_overlap() {
        let mut s = VirtualScheduler::new(2);
        let d = s.dispatch(0.0, &[charge(0, 1.0), charge(1, 1.0)]);
        // Both devices served in parallel: the request finishes after
        // 1 virtual second, not 2, though 2 device-seconds were spent.
        assert_eq!(d.completed_vt, 1.0);
        assert_eq!(d.device_seconds, 2.0);
        assert_eq!(s.busy_seconds(), &[1.0, 1.0]);
    }

    #[test]
    fn uncharged_requests_complete_instantly() {
        let mut s = VirtualScheduler::new(3);
        let d = s.dispatch(5.0, &[]);
        assert_eq!(d.started_vt, 5.0);
        assert_eq!(d.completed_vt, 5.0);
        assert_eq!(d.device_seconds, 0.0);
        assert_eq!(s.horizon(), 0.0);
    }

    #[test]
    fn late_arrivals_leave_idle_gaps() {
        let mut s = VirtualScheduler::new(1);
        s.dispatch(0.0, &[charge(0, 1.0)]);
        // Arrives after the device went idle: starts at its own submit
        // instant, not at the device's last completion.
        let d = s.dispatch(10.0, &[charge(0, 1.0)]);
        assert_eq!(d.started_vt, 10.0);
        assert_eq!(d.completed_vt, 11.0);
        // Utilization reflects the gap: 2 busy seconds over 11.
        let u = s.utilization();
        assert!((u[0] - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_device_clamps() {
        let mut s = VirtualScheduler::new(1);
        let d = s.dispatch(0.0, &[charge(9, 1.0)]);
        assert_eq!(d.device, 0);
        assert_eq!(s.busy_seconds(), &[1.0]);
    }
}
