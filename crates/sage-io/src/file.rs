//! Real-bytes I/O backend: per-device container files served with
//! positioned reads.
//!
//! Everything else in this crate models devices on a *virtual*
//! timeline; [`FileBackend`] is the first backend that actually moves
//! bytes through the host. It persists one container file per device
//! (`dev-000.sage`, `dev-001.sage`, …) under a caller-chosen
//! directory and serves extent reads with `pread` — positioned,
//! thread-safe reads that need no shared cursor, the same primitive
//! an io_uring `IORING_OP_READ` submission carries. The backend keeps
//! the reactor's submit/complete shape (ops in, outputs + charges
//! out), so a native ring can replace the `pread` call without
//! touching any caller.
//!
//! Two design rules keep the virtual timeline honest:
//!
//! - [`IoBackend::execute`] returns **no device charges**. Real reads
//!   cost wall-clock seconds, not virtual seconds; virtual charging
//!   stays wherever it already lives (the store engine's device
//!   models). Switching a dataset onto this backend therefore cannot
//!   perturb a single virtual-time number.
//! - Reopening a directory whose container files already exist — and
//!   already hold the expected byte lengths — reuses them verbatim,
//!   so a dataset round-trips across process restarts.

use crate::reactor::IoBackend;
use crate::sched::DeviceCharge;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One positioned read against a device container file: the op type
/// [`FileBackend`] executes. Mirrors the fields an io_uring read SQE
/// would carry (fd index, offset, length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileReadOp {
    /// Index of the device container to read.
    pub device: usize,
    /// Byte offset within that device's container file.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
}

/// A file guarded for appends: positioned reads bypass the lock
/// entirely (on Unix they go straight through `pread`), only writers
/// serialize.
struct DeviceFile {
    file: File,
    write: Mutex<()>,
}

/// Per-device container files serving real extent bytes.
///
/// Construct with [`FileBackend::open_or_create`], read with
/// [`FileBackend::read_extent`] (or through a reactor via the
/// [`IoBackend`] impl), extend with [`FileBackend::write_at`].
pub struct FileBackend {
    dir: PathBuf,
    files: Vec<DeviceFile>,
    reads: AtomicU64,
    bytes_read: AtomicU64,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("devices", &self.files.len())
            .field("reads", &self.reads.load(Ordering::Relaxed))
            .field("bytes_read", &self.bytes_read.load(Ordering::Relaxed))
            .finish()
    }
}

fn container_path(dir: &Path, device: usize) -> PathBuf {
    dir.join(format!("dev-{device:03}.sage"))
}

impl FileBackend {
    /// Opens (or creates) one container file per entry of `images`
    /// under `dir`, creating the directory if needed.
    ///
    /// A container that already exists with exactly `images[d].len()`
    /// bytes is reused as-is — that is the reopen path, and it is what
    /// makes a dataset persist across sessions. Any other state
    /// (missing, truncated, stale length) is rewritten from the image.
    pub fn open_or_create(dir: impl Into<PathBuf>, images: &[Vec<u8>]) -> io::Result<FileBackend> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut files = Vec::with_capacity(images.len());
        for (device, image) in images.iter().enumerate() {
            let path = container_path(&dir, device);
            let reuse = std::fs::metadata(&path)
                .map(|m| m.is_file() && m.len() == image.len() as u64)
                .unwrap_or(false);
            let file = if reuse {
                OpenOptions::new().read(true).write(true).open(&path)?
            } else {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                write_all_at(&file, image, 0)?;
                file
            };
            files.push(DeviceFile {
                file,
                write: Mutex::new(()),
            });
        }
        Ok(FileBackend {
            dir,
            files,
            reads: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// The directory holding the container files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of device containers.
    pub fn n_devices(&self) -> usize {
        self.files.len()
    }

    /// Positioned reads served so far (including through a reactor).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Bytes returned by those reads.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Reads `len` bytes at `offset` from device `device`'s container.
    ///
    /// Fails if the device index is out of range or the extent runs
    /// past the bytes actually on disk (a short read is an error, not
    /// a partial result — extents are exact).
    pub fn read_extent(&self, device: usize, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let slot = self.files.get(device).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no device container {device}"),
            )
        })?;
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&slot.file, &mut buf, offset)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len, Ordering::Relaxed);
        Ok(buf)
    }

    /// Appends `bytes` at `offset` in device `device`'s container
    /// (the store tells us where its blob ends; writing positioned
    /// rather than seek-to-end keeps the call idempotent on retry).
    /// Concurrent appends to one device serialize on a per-device
    /// lock; reads are never blocked.
    pub fn write_at(&self, device: usize, offset: u64, bytes: &[u8]) -> io::Result<()> {
        let slot = self.files.get(device).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no device container {device}"),
            )
        })?;
        let _guard = slot.write.lock().expect("file write lock poisoned");
        write_all_at(&slot.file, bytes, offset)
    }
}

/// Reactor integration: a [`FileReadOp`] in, real bytes out, **zero**
/// virtual charges — the wall clock is the only clock this backend
/// advances.
impl IoBackend for FileBackend {
    type Op = FileReadOp;
    type Output = io::Result<Vec<u8>>;

    fn execute(&self, op: FileReadOp) -> (io::Result<Vec<u8>>, Vec<DeviceCharge>) {
        (self.read_extent(op.device, op.offset, op.len), Vec::new())
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(not(unix))]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::{IoConfig, Reactor};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sage_file_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn images() -> Vec<Vec<u8>> {
        vec![
            (0u16..600).map(|v| (v % 251) as u8).collect(),
            vec![0xab; 37],
        ]
    }

    #[test]
    fn round_trips_extents_across_reopen() {
        let dir = tmpdir("reopen");
        let imgs = images();
        let be = FileBackend::open_or_create(&dir, &imgs).expect("create");
        assert_eq!(be.n_devices(), 2);
        assert_eq!(be.read_extent(0, 5, 10).expect("read"), imgs[0][5..15]);
        assert_eq!(be.read_extent(1, 0, 37).expect("read"), imgs[1]);
        drop(be);

        // Reopen: same lengths → containers are reused, bytes intact.
        let be = FileBackend::open_or_create(&dir, &imgs).expect("reopen");
        assert_eq!(be.read_extent(0, 590, 10).expect("read"), imgs[0][590..]);
        assert_eq!(be.reads(), 1);
        assert_eq!(be.bytes_read(), 10);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn short_and_out_of_range_reads_fail() {
        let dir = tmpdir("short");
        let be = FileBackend::open_or_create(&dir, &images()).expect("create");
        assert!(be.read_extent(0, 599, 2).is_err());
        assert!(be.read_extent(7, 0, 1).is_err());
        assert_eq!(be.reads(), 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn write_at_extends_container() {
        let dir = tmpdir("append");
        let be = FileBackend::open_or_create(&dir, &images()).expect("create");
        be.write_at(0, 600, b"tail").expect("append");
        assert_eq!(be.read_extent(0, 600, 4).expect("read"), b"tail");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// The io_uring-shaped path: submit [`FileReadOp`]s through a
    /// [`Reactor`] and harvest real bytes off the completion queues.
    /// Empty charge lists mean the virtual clocks never move.
    #[test]
    fn reactor_serves_real_bytes_with_zero_virtual_charges() {
        let dir = tmpdir("reactor");
        let imgs = images();
        let backend = Arc::new(FileBackend::open_or_create(&dir, &imgs).expect("create"));
        let reactor = Reactor::start(
            Arc::clone(&backend),
            IoConfig {
                workers: 2,
                queue_depth: 8,
                devices: 2,
                ..IoConfig::default()
            },
        );
        let extents: [(u64, u64); 3] = [(0, 16), (100, 8), (256, 32)];
        for (i, &(offset, len)) in extents.iter().enumerate() {
            reactor
                .submit(
                    FileReadOp {
                        device: 0,
                        offset,
                        len,
                    },
                    i as u64,
                    0.0,
                )
                .expect("submit");
        }
        let cq = reactor.completions();
        for _ in 0..extents.len() {
            let cqe = cq.wait_any().expect("completion");
            let (offset, len) = extents[cqe.user_data as usize];
            let got = cqe.output.expect("read ok");
            assert_eq!(got, imgs[0][offset as usize..(offset + len) as usize]);
        }
        let snap = reactor.snapshot();
        assert_eq!(snap.completed, 3);
        // Real backend, virtual silence: no device ever accrued time.
        assert!(snap.device_busy.iter().all(|&b| b == 0.0));
        assert_eq!(backend.reads(), 3);
        reactor.shutdown();
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
