//! Multi-SSD extent sharding.
//!
//! A [`DeviceMap`] owns N device models and assigns every chunk of a
//! sharded container to exactly one of them, translating the chunk's
//! global byte extent into a device-local extent on that device's
//! aligned layout. Chunks — not pages — are the striping unit: a chunk
//! is the atom of random access (it decodes independently), so
//! splitting one across devices would couple two device queues to a
//! single fetch.
//!
//! Two placement policies:
//!
//! - [`Placement::RoundRobin`] — chunk *i* lands on device
//!   `i mod N`; uniform when devices are identical.
//! - [`Placement::CapacityWeighted`] — each chunk goes to the device
//!   with the lowest fill *fraction*, so a fleet mixing large and
//!   small devices fills proportionally and the large device absorbs
//!   proportionally more of the read traffic.

use crate::sched::DeviceCharge;
use sage_core::Extent;
use sage_ssd::{ReadFormat, SageLayout, SsdCommand, SsdConfig, SsdModel};
use std::sync::Mutex;

/// How chunks are assigned to devices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Placement {
    /// Chunk `i` → device `i mod N`.
    #[default]
    RoundRobin,
    /// Each chunk → the device with the lowest placed-bytes /
    /// capacity fraction.
    CapacityWeighted,
}

/// One chunk's home: which device and where on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSlot {
    /// Owning device index.
    pub device: usize,
    /// Device-local byte extent of the chunk.
    pub local: Extent,
}

/// Point-in-time accounting for one device of the fleet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceSnapshot {
    /// Device index.
    pub device: usize,
    /// Device name (from its [`SsdConfig`]).
    pub name: String,
    /// Chunks resident on the device.
    pub chunks: usize,
    /// Compressed bytes placed on the device.
    pub placed_bytes: usize,
    /// Chunk-read commands served.
    pub reads: u64,
    /// Chunk-write (append) commands served.
    pub writes: u64,
    /// Device seconds spent on chunk reads.
    pub read_seconds: f64,
    /// Device seconds spent on appends.
    pub write_seconds: f64,
}

#[derive(Debug)]
struct DeviceState {
    model: SsdModel,
    layout: SageLayout,
    placed_bytes: usize,
    chunks: usize,
    reads: u64,
    writes: u64,
    read_seconds: f64,
    write_seconds: f64,
}

#[derive(Debug)]
struct SlotTable {
    slots: Vec<ChunkSlot>,
    /// Per-device placement cursors (bytes assigned, mirrors
    /// `DeviceState::placed_bytes` but lives with the table so
    /// placement never needs a device lock).
    cursors: Vec<usize>,
}

/// N device models with chunk-granularity extent striping.
#[derive(Debug)]
pub struct DeviceMap {
    placement: Placement,
    capacities: Vec<u64>,
    table: Mutex<SlotTable>,
    devices: Vec<Mutex<DeviceState>>,
}

impl DeviceMap {
    /// Builds a fleet and places `chunk_lens` (the byte length of each
    /// chunk, in chunk-id order) across it. The initial dataset write
    /// seeds each device's layout and FTL but is *not* counted in the
    /// serving snapshot — matching the single-device timing mode.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn place(configs: &[SsdConfig], placement: Placement, chunk_lens: &[usize]) -> DeviceMap {
        assert!(
            !configs.is_empty(),
            "a device map needs at least one device"
        );
        let capacities = configs.iter().map(SsdConfig::capacity_bytes).collect();
        let mut map = DeviceMap {
            placement,
            capacities,
            table: Mutex::new(SlotTable {
                slots: Vec::with_capacity(chunk_lens.len()),
                cursors: vec![0; configs.len()],
            }),
            devices: Vec::new(),
        };
        // Place every chunk first, then open each device over its
        // final byte count so the whole dataset is written once.
        let mut chunks_per_device = vec![0usize; configs.len()];
        for &len in chunk_lens {
            chunks_per_device[map.assign(len).device] += 1;
        }
        let cursors: Vec<usize> = map.table.lock().expect("table poisoned").cursors.clone();
        map.devices = configs
            .iter()
            .zip(&cursors)
            .zip(&chunks_per_device)
            .map(|((cfg, &bytes), &chunks)| {
                let mut model = SsdModel::new(cfg.clone());
                if bytes > 0 {
                    model.execute(SsdCommand::SageWrite { bytes });
                }
                Mutex::new(DeviceState {
                    layout: SageLayout::place(cfg, bytes, 0),
                    model,
                    placed_bytes: bytes,
                    chunks,
                    reads: 0,
                    writes: 0,
                    read_seconds: 0.0,
                    write_seconds: 0.0,
                })
            })
            .collect();
        map
    }

    /// Assigns the next chunk to a device and returns its slot (table
    /// bookkeeping only — device state is untouched).
    fn assign(&self, len: usize) -> ChunkSlot {
        let mut table = self.table.lock().expect("table poisoned");
        let device = match self.placement {
            Placement::RoundRobin => table.slots.len() % table.cursors.len(),
            Placement::CapacityWeighted => {
                let fill =
                    |d: usize| (table.cursors[d] + len) as f64 / (self.capacities[d].max(1)) as f64;
                (0..table.cursors.len())
                    .min_by(|&a, &b| fill(a).partial_cmp(&fill(b)).expect("finite fill"))
                    .expect("at least one device")
            }
        };
        let slot = ChunkSlot {
            device,
            local: Extent {
                offset: table.cursors[device],
                len,
            },
        };
        table.cursors[device] += len;
        table.slots.push(slot);
        slot
    }

    /// Device count.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Chunks placed so far.
    pub fn n_chunks(&self) -> usize {
        self.table.lock().expect("table poisoned").slots.len()
    }

    /// The slot a chunk was placed in, if the chunk exists.
    pub fn slot(&self, chunk_id: u32) -> Option<ChunkSlot> {
        self.table
            .lock()
            .expect("table poisoned")
            .slots
            .get(chunk_id as usize)
            .copied()
    }

    /// Charges one chunk fetch against its owning device and returns
    /// the device + service seconds (for virtual-time scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_id` was never placed — the store's manifest
    /// and the device map must agree on the chunk table.
    pub fn charge_chunk_read(&self, chunk_id: u32) -> DeviceCharge {
        let slot = self
            .slot(chunk_id)
            .unwrap_or_else(|| panic!("chunk {chunk_id} not placed on any device"));
        self.charge_extent_read(slot.device, slot.local)
    }

    /// Charges one device-local extent read as a **single** device
    /// command. This is the coalesced fetch path: an engine that
    /// merges adjacent same-device chunk extents submits the merged
    /// run here, paying the per-command fixed cost once and letting
    /// the longer transfer engage more channels — instead of one
    /// `SAGe_Read` per chunk. One command, one `reads` count, one
    /// charge.
    ///
    /// # Panics
    ///
    /// Panics if `device` does not exist in the fleet.
    pub fn charge_extent_read(&self, device: usize, local: Extent) -> DeviceCharge {
        let mut dev = self.devices[device].lock().expect("device poisoned");
        let r = dev.model.execute(SsdCommand::SageReadExtent {
            offset: local.offset,
            bytes: local.len,
            format: ReadFormat::Ascii,
        });
        dev.reads += 1;
        dev.read_seconds += r.seconds;
        DeviceCharge {
            device,
            seconds: r.seconds,
        }
    }

    /// Places one appended chunk and charges its owning device for the
    /// pages the device's layout grows by (page-accurate, like the
    /// single-device timing mode: a sub-page chunk landing inside the
    /// current partially-filled page charges nothing).
    pub fn append_chunk(&self, len: usize) -> DeviceCharge {
        let slot = self.assign(len);
        let mut guard = self.devices[slot.device].lock().expect("device poisoned");
        // Split the borrow so the layout can grow against the model's
        // config without cloning the whole SsdConfig per append (the
        // old code paid a name + geometry allocation on every chunk).
        let DeviceState { model, layout, .. } = &mut *guard;
        let old_pages = layout.n_pages();
        let new_bytes = slot.local.end();
        layout.extend_to(model.config(), new_bytes, 0);
        let grown = layout.n_pages() - old_pages;
        let page_bytes = model.config().page_bytes;
        let r = model.execute(SsdCommand::SageWrite {
            bytes: grown * page_bytes,
        });
        let dev = &mut *guard;
        dev.placed_bytes = new_bytes;
        dev.chunks += 1;
        dev.writes += 1;
        dev.write_seconds += r.seconds;
        DeviceCharge {
            device: slot.device,
            seconds: r.seconds,
        }
    }

    /// Pages a placed chunk touches on its device's layout.
    pub fn pages_for_chunk(&self, chunk_id: u32) -> usize {
        let Some(slot) = self.slot(chunk_id) else {
            return 0;
        };
        let dev = self.devices[slot.device].lock().expect("device poisoned");
        dev.layout
            .pages_for_extent(slot.local.offset, slot.local.len)
            .len()
    }

    /// Per-device accounting.
    pub fn snapshots(&self) -> Vec<DeviceSnapshot> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, dev)| {
                let dev = dev.lock().expect("device poisoned");
                DeviceSnapshot {
                    device: i,
                    name: dev.model.config().name.clone(),
                    chunks: dev.chunks,
                    placed_bytes: dev.placed_bytes,
                    reads: dev.reads,
                    writes: dev.writes,
                    read_seconds: dev.read_seconds,
                    write_seconds: dev.write_seconds,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<SsdConfig> {
        (0..n)
            .map(|i| {
                let mut cfg = SsdConfig::pcie();
                cfg.name = format!("pcie #{i}");
                cfg
            })
            .collect()
    }

    #[test]
    fn round_robin_stripes_chunks() {
        let lens = vec![100, 200, 300, 400, 500];
        let map = DeviceMap::place(&fleet(2), Placement::RoundRobin, &lens);
        assert_eq!(map.n_devices(), 2);
        assert_eq!(map.n_chunks(), 5);
        for (i, &len) in lens.iter().enumerate() {
            let slot = map.slot(i as u32).unwrap();
            assert_eq!(slot.device, i % 2);
            assert_eq!(slot.local.len, len);
        }
        // Device-local extents are contiguous per device.
        assert_eq!(map.slot(0).unwrap().local.offset, 0);
        assert_eq!(map.slot(2).unwrap().local.offset, 100);
        assert_eq!(map.slot(4).unwrap().local.offset, 400);
        assert_eq!(map.slot(1).unwrap().local.offset, 0);
        assert_eq!(map.slot(3).unwrap().local.offset, 200);
    }

    #[test]
    fn capacity_weighted_fills_proportionally() {
        let mut small = SsdConfig::pcie();
        small.name = "small".into();
        small.blocks_per_plane /= 4; // quarter capacity
        let big = SsdConfig::pcie();
        let lens = vec![1000; 100];
        let map = DeviceMap::place(
            &[small.clone(), big.clone()],
            Placement::CapacityWeighted,
            &lens,
        );
        let snaps = map.snapshots();
        let small_bytes = snaps[0].placed_bytes as f64;
        let big_bytes = snaps[1].placed_bytes as f64;
        let want = small.capacity_bytes() as f64 / big.capacity_bytes() as f64;
        let got = small_bytes / big_bytes;
        assert!(
            (got - want).abs() / want < 0.25,
            "fill ratio {got} vs capacity ratio {want}"
        );
    }

    #[test]
    fn reads_charge_the_owning_device_only() {
        let map = DeviceMap::place(&fleet(3), Placement::RoundRobin, &[4096, 4096, 4096]);
        let c = map.charge_chunk_read(1);
        assert_eq!(c.device, 1);
        assert!(c.seconds > 0.0);
        let snaps = map.snapshots();
        assert_eq!(snaps[1].reads, 1);
        assert!(snaps[1].read_seconds > 0.0);
        assert_eq!(snaps[0].reads, 0);
        assert_eq!(snaps[2].reads, 0);
    }

    #[test]
    fn appends_extend_one_device_layout() {
        let cfg = fleet(2);
        let page = cfg[0].page_bytes;
        let map = DeviceMap::place(&cfg, Placement::RoundRobin, &[page, page]);
        // Next chunk (id 2) round-robins onto device 0 and grows its
        // layout by exactly its pages.
        let c = map.append_chunk(page * 2);
        assert_eq!(c.device, 0);
        assert!(c.seconds > 0.0);
        assert_eq!(map.pages_for_chunk(2), 2);
        let snaps = map.snapshots();
        assert_eq!(snaps[0].chunks, 2);
        assert_eq!(snaps[0].writes, 1);
        assert_eq!(snaps[1].writes, 0);
        assert_eq!(snaps[0].placed_bytes, page * 3);
    }

    #[test]
    fn missing_chunks_are_absent() {
        let map = DeviceMap::place(&fleet(2), Placement::RoundRobin, &[64]);
        assert!(map.slot(1).is_none());
        assert_eq!(map.pages_for_chunk(9), 0);
    }
}
