//! The completion-queue reactor.
//!
//! io_uring in miniature: callers [`Reactor::submit`] operations into
//! a bounded submission ring and harvest [`Cqe`]s from per-device
//! completion queues; a small fixed worker set in between executes the
//! operations against an [`IoBackend`]. Any number of operations can
//! be in flight at once — the worker count bounds *execution*
//! parallelism (real CPU), while the ring capacity bounds *queued*
//! operations (the queue-depth knob), and neither bounds the number of
//! outstanding completions a consumer may leave unharvested.
//!
//! Every execution reports the device charges it incurred; the
//! reactor's [`VirtualScheduler`] turns those service times into
//! queued start/completion instants, so completions carry realistic
//! per-request latency even though the device models are analytical.

use crate::cqueue::{CompletionQueues, Cqe};
use crate::ring::{RingCounters, SubmissionRing, SubmitError};
use crate::sched::{DeviceCharge, VirtualScheduler};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What the reactor runs operations against.
///
/// `execute` does the actual work (decode, copy, predicate walk …) and
/// returns the operation's output together with the device charges the
/// work incurred — an empty charge list means the operation never
/// touched a device (e.g. it was served from a cache).
pub trait IoBackend: Send + Sync + 'static {
    /// Operation type submitted to the ring.
    type Op: Send + 'static;
    /// Result type delivered through the completion queue.
    type Output: Send + 'static;

    /// Executes one operation.
    fn execute(&self, op: Self::Op) -> (Self::Output, Vec<DeviceCharge>);
}

/// One submission: the operation plus its identity and virtual
/// submit instant.
#[derive(Debug)]
pub struct Sqe<Op> {
    /// The operation.
    pub op: Op,
    /// Caller-chosen token, returned verbatim in the [`Cqe`].
    pub user_data: u64,
    /// Virtual submit instant. Closed-loop drivers advance this per
    /// client (next submit = previous completion); simple callers pass
    /// 0.0 and read only relative device accounting.
    pub submit_vt: f64,
}

/// Reactor sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    /// Worker threads executing operations (execution parallelism).
    pub workers: usize,
    /// Submission-ring capacity (queue depth).
    pub queue_depth: usize,
    /// Device count: one completion queue and one virtual clock each.
    pub devices: usize,
    /// Record per-charge service windows into [`Cqe::intervals`]
    /// (span tracing). Off by default: the untraced hot path neither
    /// allocates nor computes anything extra, and turning it on never
    /// moves a single virtual instant — both paths run the same
    /// scheduler arithmetic.
    pub record_intervals: bool,
}

impl Default for IoConfig {
    fn default() -> IoConfig {
        IoConfig {
            workers: 4,
            queue_depth: 32,
            devices: 1,
            record_intervals: false,
        }
    }
}

/// Point-in-time reactor accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactorSnapshot {
    /// Operations accepted into the ring.
    pub submitted: u64,
    /// `try_submit` attempts shed because the ring was full.
    pub rejected: u64,
    /// Operations completed (posted to a completion queue).
    pub completed: u64,
    /// Operations queued in the ring right now.
    pub queued: usize,
    /// Busy (service) seconds accumulated per device.
    pub device_busy: Vec<f64>,
    /// Virtual makespan: the latest instant any device is booked to.
    pub horizon: f64,
    /// Per-device utilization over the makespan.
    pub utilization: Vec<f64>,
}

impl ReactorSnapshot {
    /// Per-device utilization over a caller-chosen window — load
    /// drivers report utilization over *their* makespan (the latest
    /// completion they harvested), which can differ from the
    /// scheduler's global horizon when other traffic shares the
    /// reactor. All zeros for a non-positive window.
    pub fn utilization_over(&self, window: f64) -> Vec<f64> {
        if window <= 0.0 {
            return vec![0.0; self.device_busy.len()];
        }
        self.device_busy.iter().map(|b| b / window).collect()
    }

    /// Busy seconds summed across every device — the run's total
    /// service demand. The observability layer's windowed busy
    /// integrals and blame timelines are checked against this total.
    pub fn total_busy_seconds(&self) -> f64 {
        self.device_busy.iter().sum()
    }
}

/// A running reactor over backend `B`.
#[derive(Debug)]
pub struct Reactor<B: IoBackend> {
    ring: Arc<SubmissionRing<Sqe<B::Op>>>,
    cq: Arc<CompletionQueues<B::Output>>,
    sched: Arc<Mutex<VirtualScheduler>>,
    workers: Vec<JoinHandle<()>>,
}

impl<B: IoBackend> Reactor<B> {
    /// Starts `cfg.workers` workers over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` or `cfg.queue_depth` is 0.
    pub fn start(backend: Arc<B>, cfg: IoConfig) -> Reactor<B> {
        assert!(cfg.workers > 0, "need at least one worker");
        let ring: Arc<SubmissionRing<Sqe<B::Op>>> = Arc::new(SubmissionRing::new(cfg.queue_depth));
        let cq = Arc::new(CompletionQueues::new(cfg.devices, cfg.workers));
        let sched = Arc::new(Mutex::new(VirtualScheduler::new(cfg.devices)));
        let record_intervals = cfg.record_intervals;
        let workers = (0..cfg.workers)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let cq = Arc::clone(&cq);
                let sched = Arc::clone(&sched);
                let backend = Arc::clone(&backend);
                std::thread::spawn(move || {
                    // Signalled on *every* exit path: a backend panic
                    // that unwinds this thread must still count the
                    // poster down, or `wait_any` consumers (and the
                    // store server's dispatcher join) would block
                    // forever on a live_posters count that can never
                    // reach zero.
                    struct PosterGuard<'a, T>(&'a CompletionQueues<T>);
                    impl<T> Drop for PosterGuard<'_, T> {
                        fn drop(&mut self) {
                            self.0.poster_done();
                        }
                    }
                    let _guard = PosterGuard(&cq);
                    while let Some(sqe) = ring.pop() {
                        let (output, charges) = backend.execute(sqe.op);
                        let (dispatch, intervals) = {
                            let mut sched = sched.lock().expect("scheduler poisoned");
                            if record_intervals {
                                sched.dispatch_traced(sqe.submit_vt, &charges)
                            } else {
                                (sched.dispatch(sqe.submit_vt, &charges), Vec::new())
                            }
                        };
                        cq.post(Cqe::from_dispatch(
                            sqe.user_data,
                            sqe.submit_vt,
                            dispatch,
                            intervals,
                            output,
                        ));
                    }
                })
            })
            .collect();
        Reactor {
            ring,
            cq,
            sched,
            workers,
        }
    }

    /// Submits an operation, blocking while the ring is full
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the reactor already shut down.
    pub fn submit(&self, op: B::Op, user_data: u64, submit_vt: f64) -> Result<(), SubmitError> {
        self.ring.push(Sqe {
            op,
            user_data,
            submit_vt,
        })
    }

    /// Submits without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the ring is at capacity (the
    /// rejection is counted), [`SubmitError::Closed`] after shutdown.
    pub fn try_submit(&self, op: B::Op, user_data: u64, submit_vt: f64) -> Result<(), SubmitError> {
        self.ring.try_push(Sqe {
            op,
            user_data,
            submit_vt,
        })
    }

    /// Submits a batch of `(op, user_data, submit_vt)` entries in
    /// order with one ring-lock acquisition per capacity window
    /// instead of one per operation — the cheap way to seed a closed
    /// loop or inject an arrival burst. Blocks (backpressure) while
    /// the ring is full, exactly like [`Reactor::submit`].
    ///
    /// # Errors
    ///
    /// `Err((SubmitError::Closed, accepted))` when the reactor shut
    /// down mid-batch; `accepted` operations were already enqueued
    /// and will still be served by a graceful close.
    pub fn submit_batch(
        &self,
        ops: impl IntoIterator<Item = (B::Op, u64, f64)>,
    ) -> Result<usize, (SubmitError, usize)> {
        self.ring
            .push_batch(ops.into_iter().map(|(op, user_data, submit_vt)| Sqe {
                op,
                user_data,
                submit_vt,
            }))
    }

    /// The completion side (shareable: a dispatcher thread can hold
    /// its own handle and outlive the reactor's owner).
    pub fn completions(&self) -> Arc<CompletionQueues<B::Output>> {
        Arc::clone(&self.cq)
    }

    /// The queue-depth the reactor was started with.
    pub fn queue_depth(&self) -> usize {
        self.ring.capacity()
    }

    /// Reads the accumulated accounting.
    pub fn snapshot(&self) -> ReactorSnapshot {
        let RingCounters {
            submitted,
            rejected,
            queued,
        } = self.ring.counters();
        let sched = self.sched.lock().expect("scheduler poisoned");
        ReactorSnapshot {
            submitted,
            rejected,
            completed: self.cq.completed(),
            queued,
            device_busy: sched.busy_seconds().to_vec(),
            horizon: sched.horizon(),
            utilization: sched.utilization(),
        }
    }

    /// Closes the submission ring gracefully *without* joining the
    /// workers: new submissions are rejected and submitters blocked
    /// on a full ring wake with [`SubmitError::Closed`]; operations
    /// already queued are still served. Teardown
    /// ([`Reactor::shutdown`]/[`Reactor::abort`]/drop) remains the
    /// owner's job — this exists so a shared handle can unblock
    /// stuck submitters before the owner tears down.
    pub fn close(&self) {
        self.ring.close();
    }

    /// Closes the ring immediately, returning the unserved entries
    /// (as [`Reactor::abort`] would) without joining the workers;
    /// blocked submitters wake with [`SubmitError::Closed`].
    pub fn close_now(&self) -> Vec<Sqe<B::Op>> {
        self.ring.close_now()
    }

    /// Graceful shutdown: rejects new submissions, serves everything
    /// already queued, then joins the workers. Consumers see the end
    /// of stream once the last queued completion is harvested.
    pub fn shutdown(mut self) {
        self.stop_graceful();
    }

    /// Immediate shutdown: unserved queued submissions are returned to
    /// the caller (for explicit cancellation) instead of executed. The
    /// operation a worker is mid-way through still completes.
    pub fn abort(mut self) -> Vec<Sqe<B::Op>> {
        let unserved = self.ring.close_now();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        unserved
    }

    fn stop_graceful(&mut self) {
        self.ring.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<B: IoBackend> Drop for Reactor<B> {
    fn drop(&mut self) {
        self.stop_graceful();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles the input and charges `input % devices` for 1 ms.
    struct Doubler {
        devices: usize,
    }

    impl IoBackend for Doubler {
        type Op = u64;
        type Output = u64;
        fn execute(&self, op: u64) -> (u64, Vec<DeviceCharge>) {
            (
                op * 2,
                vec![DeviceCharge {
                    device: (op % self.devices as u64) as usize,
                    seconds: 1e-3,
                }],
            )
        }
    }

    #[test]
    fn completions_carry_outputs_and_tokens() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 2 }),
            IoConfig {
                workers: 2,
                queue_depth: 8,
                devices: 2,
                record_intervals: false,
            },
        );
        for i in 0..6u64 {
            r.submit(i, 100 + i, 0.0).unwrap();
        }
        let cq = r.completions();
        let mut seen = Vec::new();
        for _ in 0..6 {
            let cqe = cq.wait_any().expect("live reactor");
            assert_eq!(cqe.output, (cqe.user_data - 100) * 2);
            assert_eq!(cqe.device, ((cqe.user_data - 100) % 2) as usize);
            seen.push(cqe.user_data);
        }
        seen.sort_unstable();
        assert_eq!(seen, (100..106).collect::<Vec<_>>());
        let snap = r.snapshot();
        assert_eq!(snap.submitted, 6);
        assert_eq!(snap.completed, 6);
        // 3 ops per device × 1 ms.
        assert!((snap.device_busy[0] - 3e-3).abs() < 1e-12);
        assert!((snap.device_busy[1] - 3e-3).abs() < 1e-12);
        // Total service demand across the fleet: 6 ops × 1 ms.
        assert!((snap.total_busy_seconds() - 6e-3).abs() < 1e-12);
        assert_eq!(
            snap.total_busy_seconds(),
            snap.device_busy.iter().sum::<f64>()
        );
        r.shutdown();
    }

    #[test]
    fn record_intervals_decomposes_completions() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 2 }),
            IoConfig {
                workers: 1,
                queue_depth: 8,
                devices: 2,
                record_intervals: true,
            },
        );
        for i in 0..4u64 {
            r.submit(i, i, 0.0).unwrap();
        }
        let cq = r.completions();
        for _ in 0..4 {
            let cqe = cq.wait_any().expect("live reactor");
            // Doubler charges exactly one device per op; the interval
            // reconstructs the completion's instants and demand.
            assert_eq!(cqe.intervals.len(), 1);
            let iv = cqe.intervals[0];
            assert_eq!(iv.device, cqe.device);
            assert_eq!(iv.start_vt, cqe.started_vt);
            assert_eq!(iv.end_vt, cqe.completed_vt);
            assert_eq!(iv.seconds, cqe.device_seconds);
        }
        r.shutdown();
    }

    #[test]
    fn graceful_shutdown_serves_queued_work() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 1 }),
            IoConfig {
                workers: 1,
                queue_depth: 16,
                devices: 1,
                record_intervals: false,
            },
        );
        for i in 0..10u64 {
            r.submit(i, i, 0.0).unwrap();
        }
        let cq = r.completions();
        r.shutdown();
        let mut n = 0;
        while cq.wait_any().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn abort_returns_unserved_submissions() {
        // One worker blocked by a slow queue ensures entries pile up.
        let r = Reactor::start(
            Arc::new(Doubler { devices: 1 }),
            IoConfig {
                workers: 1,
                queue_depth: 64,
                devices: 1,
                record_intervals: false,
            },
        );
        for i in 0..50u64 {
            r.submit(i, i, 0.0).unwrap();
        }
        let cq = r.completions();
        let unserved = r.abort();
        let mut completed = 0;
        while cq.wait_any().is_some() {
            completed += 1;
        }
        assert_eq!(completed + unserved.len(), 50);
    }

    #[test]
    fn try_submit_sheds_load_when_full() {
        // Zero workers is forbidden, so stall the single worker with a
        // first op, then overfill the ring.
        struct Slow;
        impl IoBackend for Slow {
            type Op = ();
            type Output = ();
            fn execute(&self, _: ()) -> ((), Vec<DeviceCharge>) {
                std::thread::sleep(std::time::Duration::from_millis(30));
                ((), Vec::new())
            }
        }
        let r = Reactor::start(
            Arc::new(Slow),
            IoConfig {
                workers: 1,
                queue_depth: 2,
                devices: 1,
                record_intervals: false,
            },
        );
        // First submit may begin executing immediately; fill the ring
        // behind it and then overflow.
        r.submit((), 0, 0.0).unwrap();
        let mut rejected = 0;
        for i in 1..=8u64 {
            if r.try_submit((), i, 0.0) == Err(SubmitError::Full) {
                rejected += 1;
            }
        }
        assert!(rejected > 0);
        assert_eq!(r.snapshot().rejected, rejected);
        r.shutdown();
    }

    #[test]
    fn panicking_backend_does_not_hang_consumers() {
        // A panic unwinding out of execute() must still count the
        // worker down, or wait_any() would block forever.
        struct Bomb;
        impl IoBackend for Bomb {
            type Op = bool; // true ⇒ panic
            type Output = u32;
            fn execute(&self, explode: bool) -> (u32, Vec<DeviceCharge>) {
                assert!(!explode, "backend bomb");
                (7, Vec::new())
            }
        }
        let r = Reactor::start(
            Arc::new(Bomb),
            IoConfig {
                workers: 2,
                queue_depth: 8,
                devices: 1,
                record_intervals: false,
            },
        );
        let cq = r.completions();
        r.submit(true, 0, 0.0).unwrap(); // kills one worker
        r.submit(false, 1, 0.0).unwrap(); // the survivor serves this
        let mut served = 0;
        r.shutdown(); // joins the dead worker without deadlocking
        while let Some(cqe) = cq.wait_any() {
            assert_eq!(cqe.user_data, 1);
            assert_eq!(cqe.output, 7);
            served += 1;
        }
        // wait_any reached end-of-stream: the panicked worker's
        // guard ran. The panicked op produced no completion.
        assert_eq!(served, 1);
    }

    #[test]
    fn closed_loop_latency_grows_with_depth() {
        // The queue-depth knob in one test: same backend, same request
        // count, deeper closed loop ⇒ higher mean virtual latency.
        let run = |depth: u64| {
            let r = Reactor::start(
                Arc::new(Doubler { devices: 1 }),
                IoConfig {
                    workers: 2,
                    queue_depth: depth as usize,
                    devices: 1,
                    record_intervals: false,
                },
            );
            let cq = r.completions();
            for c in 0..depth {
                r.submit(c, c, 0.0).unwrap();
            }
            let mut latencies = Vec::new();
            let mut left = 64u64 - depth;
            while latencies.len() < 64 {
                let cqe = cq.wait_any().expect("live");
                latencies.push(cqe.latency());
                if left > 0 {
                    left -= 1;
                    r.submit(cqe.user_data, cqe.user_data, cqe.completed_vt)
                        .unwrap();
                }
            }
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let shallow = run(1);
        let deep = run(8);
        assert!(
            deep > shallow * 2.0,
            "mean latency shallow {shallow} deep {deep}"
        );
    }
}
