//! The completion-queue reactor.
//!
//! io_uring in miniature: callers [`Reactor::submit`] operations into
//! a bounded submission ring and harvest [`Cqe`]s from per-device
//! completion queues; a small fixed worker set in between executes the
//! operations against an [`IoBackend`]. Any number of operations can
//! be in flight at once — the worker count bounds *execution*
//! parallelism (real CPU), while the ring capacity bounds *queued*
//! operations (the queue-depth knob), and neither bounds the number of
//! outstanding completions a consumer may leave unharvested.
//!
//! Every execution reports the device charges it incurred; the
//! reactor's [`VirtualScheduler`] turns those service times into
//! queued start/completion instants, so completions carry realistic
//! per-request latency even though the device models are analytical.

use crate::cqueue::{CompletionQueues, Cqe};
use crate::qos::{SchedPolicyKind, SchedTag};
use crate::ring::{RingCounters, SubmissionRing, SubmitError};
use crate::sched::{DeviceCharge, VirtualScheduler};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What the reactor runs operations against.
///
/// `execute` does the actual work (decode, copy, predicate walk …) and
/// returns the operation's output together with the device charges the
/// work incurred — an empty charge list means the operation never
/// touched a device (e.g. it was served from a cache).
pub trait IoBackend: Send + Sync + 'static {
    /// Operation type submitted to the ring.
    type Op: Send + 'static;
    /// Result type delivered through the completion queue.
    type Output: Send + 'static;

    /// Executes one operation.
    fn execute(&self, op: Self::Op) -> (Self::Output, Vec<DeviceCharge>);
}

/// One submission: the operation plus its identity and virtual
/// submit instant.
#[derive(Debug)]
pub struct Sqe<Op> {
    /// The operation.
    pub op: Op,
    /// Caller-chosen token, returned verbatim in the [`Cqe`].
    pub user_data: u64,
    /// Virtual submit instant. Closed-loop drivers advance this per
    /// client (next submit = previous completion); simple callers pass
    /// 0.0 and read only relative device accounting.
    pub submit_vt: f64,
    /// Scheduling attributes (tenant, priority, weight, deadline) —
    /// the default tag bills tenant 0 and schedules neutrally.
    pub tag: SchedTag,
}

/// Reactor sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    /// Worker threads executing operations (execution parallelism).
    pub workers: usize,
    /// Submission-ring capacity (queue depth).
    pub queue_depth: usize,
    /// Device count: one completion queue and one virtual clock each.
    pub devices: usize,
    /// Record per-charge service windows into [`Cqe::intervals`]
    /// (span tracing). Off by default: the untraced hot path neither
    /// allocates nor computes anything extra, and turning it on never
    /// moves a single virtual instant — both paths run the same
    /// scheduler arithmetic.
    pub record_intervals: bool,
    /// Device scheduling discipline. [`SchedPolicyKind::Fifo`] (the
    /// default) dispatches eagerly — bit-identical to the pre-QoS
    /// reactor. Any other policy routes charges through the
    /// scheduler's per-device pending queues: workers enqueue instead
    /// of placing, and completions post when the timeline resolves —
    /// via [`Reactor::advance_to`] as the arrival frontier moves, or
    /// at the end-of-stream flush after [`Reactor::close`].
    pub policy: SchedPolicyKind,
}

impl Default for IoConfig {
    fn default() -> IoConfig {
        IoConfig {
            workers: 4,
            queue_depth: 32,
            devices: 1,
            record_intervals: false,
            policy: SchedPolicyKind::Fifo,
        }
    }
}

/// Point-in-time reactor accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactorSnapshot {
    /// Operations accepted into the ring.
    pub submitted: u64,
    /// `try_submit` attempts shed because the ring was full.
    pub rejected: u64,
    /// Operations completed (posted to a completion queue).
    pub completed: u64,
    /// Operations queued in the ring right now.
    pub queued: usize,
    /// Busy (service) seconds accumulated per device.
    pub device_busy: Vec<f64>,
    /// Virtual makespan: the latest instant any device is booked to.
    pub horizon: f64,
    /// Per-device utilization over the makespan.
    pub utilization: Vec<f64>,
    /// Busy seconds per tenant per device (`[tenant][device]`; rows
    /// exist for every tenant that dispatched). `device_busy` is the
    /// fold of these rows in tenant order, so the per-tenant split
    /// conserves the device totals *exactly*, not just within
    /// floating-point tolerance.
    pub tenant_busy: Vec<Vec<f64>>,
    /// Seconds charges spent waiting between submit and service
    /// start, per tenant.
    pub tenant_queue_delay: Vec<f64>,
}

impl ReactorSnapshot {
    /// Per-device utilization over a caller-chosen window — load
    /// drivers report utilization over *their* makespan (the latest
    /// completion they harvested), which can differ from the
    /// scheduler's global horizon when other traffic shares the
    /// reactor. All zeros for a non-positive window.
    pub fn utilization_over(&self, window: f64) -> Vec<f64> {
        if window <= 0.0 {
            return vec![0.0; self.device_busy.len()];
        }
        self.device_busy.iter().map(|b| b / window).collect()
    }

    /// Busy seconds summed across every device — the run's total
    /// service demand. The observability layer's windowed busy
    /// integrals and blame timelines are checked against this total.
    pub fn total_busy_seconds(&self) -> f64 {
        self.device_busy.iter().sum()
    }
}

/// Scheduler-side shared state: the virtual clocks plus, for the
/// queued dispatch path, the outputs of executed-but-unresolved
/// operations (keyed by the scheduler's enqueue handle) and the count
/// of submissions fully processed by a worker (the
/// [`Reactor::quiesce`] target).
struct SchedState<T> {
    sched: VirtualScheduler,
    held: HashMap<u64, T>,
    processed: u64,
}

impl<T> fmt::Debug for SchedState<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedState")
            .field("sched", &self.sched)
            .field("held", &self.held.len())
            .field("processed", &self.processed)
            .finish()
    }
}

/// The shared state cell: one mutex for the scheduler and held
/// outputs, one condvar signalling `processed` advances.
struct StateCell<T> {
    state: Mutex<SchedState<T>>,
    processed_cv: Condvar,
}

impl<T> fmt::Debug for StateCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateCell")
            .field("state", &self.state)
            .finish()
    }
}

/// A running reactor over backend `B`.
#[derive(Debug)]
pub struct Reactor<B: IoBackend> {
    ring: Arc<SubmissionRing<Sqe<B::Op>>>,
    cq: Arc<CompletionQueues<B::Output>>,
    cell: Arc<StateCell<B::Output>>,
    record_intervals: bool,
    policy: SchedPolicyKind,
    workers: Vec<JoinHandle<()>>,
}

impl<B: IoBackend> Reactor<B> {
    /// Starts `cfg.workers` workers over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` or `cfg.queue_depth` is 0.
    pub fn start(backend: Arc<B>, cfg: IoConfig) -> Reactor<B> {
        assert!(cfg.workers > 0, "need at least one worker");
        let ring: Arc<SubmissionRing<Sqe<B::Op>>> = Arc::new(SubmissionRing::new(cfg.queue_depth));
        let cq = Arc::new(CompletionQueues::new(cfg.devices, cfg.workers));
        let cell = Arc::new(StateCell {
            state: Mutex::new(SchedState {
                sched: VirtualScheduler::with_policy(cfg.devices, cfg.policy),
                held: HashMap::new(),
                processed: 0,
            }),
            processed_cv: Condvar::new(),
        });
        let record_intervals = cfg.record_intervals;
        let policy = cfg.policy;
        let workers = (0..cfg.workers)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let cq = Arc::clone(&cq);
                let cell = Arc::clone(&cell);
                let backend = Arc::clone(&backend);
                std::thread::spawn(move || {
                    // Signalled on *every* exit path: a backend panic
                    // that unwinds this thread must still count the
                    // poster down, or `wait_any` consumers (and the
                    // store server's dispatcher join) would block
                    // forever on a live_posters count that can never
                    // reach zero.
                    struct PosterGuard<'a, T>(&'a CompletionQueues<T>);
                    impl<T> Drop for PosterGuard<'_, T> {
                        fn drop(&mut self) {
                            self.0.poster_done();
                        }
                    }
                    let _guard = PosterGuard(&cq);
                    while let Some(sqe) = ring.pop() {
                        let (output, charges) = backend.execute(sqe.op);
                        if policy == SchedPolicyKind::Fifo {
                            // Eager dispatch: place immediately, post
                            // immediately — the pre-QoS hot path, with
                            // busy/queue-delay billed to the tag's
                            // tenant.
                            let (dispatch, intervals) = {
                                let mut state = cell.state.lock().expect("scheduler poisoned");
                                if record_intervals {
                                    state.sched.dispatch_tagged_traced(
                                        sqe.submit_vt,
                                        &charges,
                                        sqe.tag.tenant,
                                    )
                                } else {
                                    (
                                        state.sched.dispatch_tagged(
                                            sqe.submit_vt,
                                            &charges,
                                            sqe.tag.tenant,
                                        ),
                                        Vec::new(),
                                    )
                                }
                            };
                            cq.post(Cqe::from_dispatch(
                                sqe.user_data,
                                sqe.submit_vt,
                                dispatch,
                                intervals,
                                output,
                            ));
                            let mut state = cell.state.lock().expect("scheduler poisoned");
                            state.processed += 1;
                            drop(state);
                            cell.processed_cv.notify_all();
                        } else {
                            // Queued dispatch: execution happens now
                            // (in submission order), but the timeline
                            // placement waits in the policy's pending
                            // queues; the completion posts when the
                            // operation resolves.
                            let mut state = cell.state.lock().expect("scheduler poisoned");
                            let handle = state.sched.enqueue(
                                sqe.user_data,
                                sqe.submit_vt,
                                &charges,
                                sqe.tag,
                            );
                            state.held.insert(handle, output);
                            state.processed += 1;
                            drop(state);
                            cell.processed_cv.notify_all();
                        }
                    }
                    if policy != SchedPolicyKind::Fifo {
                        // End of stream: resolve everything still
                        // pending before this poster counts down, so
                        // `wait_any` consumers drain every completion.
                        // With several workers each flushes what is
                        // pending at its own exit; the last one to
                        // leave sweeps the remainder.
                        Reactor::<B>::post_resolved(&cq, record_intervals, {
                            let mut state = cell.state.lock().expect("scheduler poisoned");
                            let resolved = state.sched.flush();
                            resolved
                                .into_iter()
                                .map(|r| {
                                    let output = state.held.remove(&r.handle).expect("held output");
                                    (r, output)
                                })
                                .collect()
                        });
                    }
                })
            })
            .collect();
        Reactor {
            ring,
            cq,
            cell,
            record_intervals,
            policy,
            workers,
        }
    }

    /// Posts resolved queued operations as completions, honoring the
    /// interval-recording knob.
    fn post_resolved(
        cq: &CompletionQueues<B::Output>,
        record_intervals: bool,
        resolved: Vec<(crate::sched::ResolvedOp, B::Output)>,
    ) -> usize {
        let n = resolved.len();
        for (r, output) in resolved {
            let intervals = if record_intervals {
                r.intervals
            } else {
                Vec::new()
            };
            cq.post(Cqe::from_dispatch(
                r.user_data,
                r.submit_vt,
                r.dispatch,
                intervals,
                output,
            ));
        }
        n
    }

    /// Moves the arrival frontier of the queued dispatch path to `vt`:
    /// resolves every pending pick whose decision instant lies
    /// strictly before `vt` and posts the completions of operations
    /// that fully resolved. Returns how many completions posted. A
    /// no-op (0) under the eager [`SchedPolicyKind::Fifo`].
    ///
    /// The caller owns the frontier contract: every submission with
    /// `submit_vt < vt` must already be processed (see
    /// [`Reactor::quiesce`]) — open-loop drivers submit in
    /// nondecreasing virtual time, quiesce, then advance.
    pub fn advance_to(&self, vt: f64) -> usize {
        let resolved = {
            let mut state = self.cell.state.lock().expect("scheduler poisoned");
            let resolved = state.sched.advance_to(vt);
            resolved
                .into_iter()
                .map(|r| {
                    let output = state.held.remove(&r.handle).expect("held output");
                    (r, output)
                })
                .collect()
        };
        Self::post_resolved(&self.cq, self.record_intervals, resolved)
    }

    /// Blocks until every submission accepted so far has been
    /// processed by a worker (executed and, under the eager policy,
    /// posted; under a queued policy, enqueued into the pending
    /// queues). The synchronization point open-loop drivers need
    /// between submitting an arrival and reading the timeline.
    ///
    /// Counts only accepted submissions (rejected `try_submit`s are
    /// not waited for). A worker lost to a backend panic never
    /// finishes its operation, so quiescing after one would block
    /// until another submission is processed.
    pub fn quiesce(&self) {
        let target = self.ring.counters().submitted;
        let mut state = self.cell.state.lock().expect("scheduler poisoned");
        while state.processed < target {
            state = self
                .cell
                .processed_cv
                .wait(state)
                .expect("scheduler poisoned");
        }
    }

    /// The configured scheduling policy.
    pub fn policy(&self) -> SchedPolicyKind {
        self.policy
    }

    /// Submits an operation, blocking while the ring is full
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the reactor already shut down.
    pub fn submit(&self, op: B::Op, user_data: u64, submit_vt: f64) -> Result<(), SubmitError> {
        self.ring.push(Sqe {
            op,
            user_data,
            submit_vt,
            tag: SchedTag::default(),
        })
    }

    /// [`Reactor::submit`] with explicit scheduling attributes —
    /// tenant attribution under every policy, and the
    /// priority/weight/deadline the queued policies order by.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the reactor already shut down.
    pub fn submit_tagged(
        &self,
        op: B::Op,
        user_data: u64,
        submit_vt: f64,
        tag: SchedTag,
    ) -> Result<(), SubmitError> {
        self.ring.push(Sqe {
            op,
            user_data,
            submit_vt,
            tag,
        })
    }

    /// Submits without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the ring is at capacity (the
    /// rejection is counted), [`SubmitError::Closed`] after shutdown.
    pub fn try_submit(&self, op: B::Op, user_data: u64, submit_vt: f64) -> Result<(), SubmitError> {
        self.try_submit_tagged(op, user_data, submit_vt, SchedTag::default())
    }

    /// [`Reactor::try_submit`] with explicit scheduling attributes.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the ring is at capacity (the
    /// rejection is counted), [`SubmitError::Closed`] after shutdown.
    pub fn try_submit_tagged(
        &self,
        op: B::Op,
        user_data: u64,
        submit_vt: f64,
        tag: SchedTag,
    ) -> Result<(), SubmitError> {
        self.ring.try_push(Sqe {
            op,
            user_data,
            submit_vt,
            tag,
        })
    }

    /// Submits a batch of `(op, user_data, submit_vt)` entries in
    /// order with one ring-lock acquisition per capacity window
    /// instead of one per operation — the cheap way to seed a closed
    /// loop or inject an arrival burst. Blocks (backpressure) while
    /// the ring is full, exactly like [`Reactor::submit`].
    ///
    /// # Errors
    ///
    /// `Err((SubmitError::Closed, accepted))` when the reactor shut
    /// down mid-batch; `accepted` operations were already enqueued
    /// and will still be served by a graceful close.
    pub fn submit_batch(
        &self,
        ops: impl IntoIterator<Item = (B::Op, u64, f64)>,
    ) -> Result<usize, (SubmitError, usize)> {
        self.ring
            .push_batch(ops.into_iter().map(|(op, user_data, submit_vt)| Sqe {
                op,
                user_data,
                submit_vt,
                tag: SchedTag::default(),
            }))
    }

    /// The completion side (shareable: a dispatcher thread can hold
    /// its own handle and outlive the reactor's owner).
    pub fn completions(&self) -> Arc<CompletionQueues<B::Output>> {
        Arc::clone(&self.cq)
    }

    /// The queue-depth the reactor was started with.
    pub fn queue_depth(&self) -> usize {
        self.ring.capacity()
    }

    /// Reads the accumulated accounting.
    pub fn snapshot(&self) -> ReactorSnapshot {
        let RingCounters {
            submitted,
            rejected,
            queued,
        } = self.ring.counters();
        let state = self.cell.state.lock().expect("scheduler poisoned");
        ReactorSnapshot {
            submitted,
            rejected,
            completed: self.cq.completed(),
            queued,
            device_busy: state.sched.busy_seconds(),
            horizon: state.sched.horizon(),
            utilization: state.sched.utilization(),
            tenant_busy: state.sched.tenant_busy_seconds().to_vec(),
            tenant_queue_delay: state.sched.tenant_queue_delay().to_vec(),
        }
    }

    /// Closes the submission ring gracefully *without* joining the
    /// workers: new submissions are rejected and submitters blocked
    /// on a full ring wake with [`SubmitError::Closed`]; operations
    /// already queued are still served. Teardown
    /// ([`Reactor::shutdown`]/[`Reactor::abort`]/drop) remains the
    /// owner's job — this exists so a shared handle can unblock
    /// stuck submitters before the owner tears down.
    pub fn close(&self) {
        self.ring.close();
    }

    /// Closes the ring immediately, returning the unserved entries
    /// (as [`Reactor::abort`] would) without joining the workers;
    /// blocked submitters wake with [`SubmitError::Closed`].
    pub fn close_now(&self) -> Vec<Sqe<B::Op>> {
        self.ring.close_now()
    }

    /// Graceful shutdown: rejects new submissions, serves everything
    /// already queued, then joins the workers. Consumers see the end
    /// of stream once the last queued completion is harvested.
    pub fn shutdown(mut self) {
        self.stop_graceful();
    }

    /// Immediate shutdown: unserved queued submissions are returned to
    /// the caller (for explicit cancellation) instead of executed. The
    /// operation a worker is mid-way through still completes.
    pub fn abort(mut self) -> Vec<Sqe<B::Op>> {
        let unserved = self.ring.close_now();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        unserved
    }

    fn stop_graceful(&mut self) {
        self.ring.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<B: IoBackend> Drop for Reactor<B> {
    fn drop(&mut self) {
        self.stop_graceful();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles the input and charges `input % devices` for 1 ms.
    struct Doubler {
        devices: usize,
    }

    impl IoBackend for Doubler {
        type Op = u64;
        type Output = u64;
        fn execute(&self, op: u64) -> (u64, Vec<DeviceCharge>) {
            (
                op * 2,
                vec![DeviceCharge {
                    device: (op % self.devices as u64) as usize,
                    seconds: 1e-3,
                }],
            )
        }
    }

    #[test]
    fn completions_carry_outputs_and_tokens() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 2 }),
            IoConfig {
                workers: 2,
                queue_depth: 8,
                devices: 2,
                record_intervals: false,
                policy: SchedPolicyKind::Fifo,
            },
        );
        for i in 0..6u64 {
            r.submit(i, 100 + i, 0.0).unwrap();
        }
        let cq = r.completions();
        let mut seen = Vec::new();
        for _ in 0..6 {
            let cqe = cq.wait_any().expect("live reactor");
            assert_eq!(cqe.output, (cqe.user_data - 100) * 2);
            assert_eq!(cqe.device, ((cqe.user_data - 100) % 2) as usize);
            seen.push(cqe.user_data);
        }
        seen.sort_unstable();
        assert_eq!(seen, (100..106).collect::<Vec<_>>());
        let snap = r.snapshot();
        assert_eq!(snap.submitted, 6);
        assert_eq!(snap.completed, 6);
        // 3 ops per device × 1 ms.
        assert!((snap.device_busy[0] - 3e-3).abs() < 1e-12);
        assert!((snap.device_busy[1] - 3e-3).abs() < 1e-12);
        // Total service demand across the fleet: 6 ops × 1 ms.
        assert!((snap.total_busy_seconds() - 6e-3).abs() < 1e-12);
        assert_eq!(
            snap.total_busy_seconds(),
            snap.device_busy.iter().sum::<f64>()
        );
        r.shutdown();
    }

    #[test]
    fn record_intervals_decomposes_completions() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 2 }),
            IoConfig {
                workers: 1,
                queue_depth: 8,
                devices: 2,
                record_intervals: true,
                policy: SchedPolicyKind::Fifo,
            },
        );
        for i in 0..4u64 {
            r.submit(i, i, 0.0).unwrap();
        }
        let cq = r.completions();
        for _ in 0..4 {
            let cqe = cq.wait_any().expect("live reactor");
            // Doubler charges exactly one device per op; the interval
            // reconstructs the completion's instants and demand.
            assert_eq!(cqe.intervals.len(), 1);
            let iv = cqe.intervals[0];
            assert_eq!(iv.device, cqe.device);
            assert_eq!(iv.start_vt, cqe.started_vt);
            assert_eq!(iv.end_vt, cqe.completed_vt);
            assert_eq!(iv.seconds, cqe.device_seconds);
        }
        r.shutdown();
    }

    #[test]
    fn graceful_shutdown_serves_queued_work() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 1 }),
            IoConfig {
                workers: 1,
                queue_depth: 16,
                devices: 1,
                record_intervals: false,
                policy: SchedPolicyKind::Fifo,
            },
        );
        for i in 0..10u64 {
            r.submit(i, i, 0.0).unwrap();
        }
        let cq = r.completions();
        r.shutdown();
        let mut n = 0;
        while cq.wait_any().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn abort_returns_unserved_submissions() {
        // One worker blocked by a slow queue ensures entries pile up.
        let r = Reactor::start(
            Arc::new(Doubler { devices: 1 }),
            IoConfig {
                workers: 1,
                queue_depth: 64,
                devices: 1,
                record_intervals: false,
                policy: SchedPolicyKind::Fifo,
            },
        );
        for i in 0..50u64 {
            r.submit(i, i, 0.0).unwrap();
        }
        let cq = r.completions();
        let unserved = r.abort();
        let mut completed = 0;
        while cq.wait_any().is_some() {
            completed += 1;
        }
        assert_eq!(completed + unserved.len(), 50);
    }

    #[test]
    fn try_submit_sheds_load_when_full() {
        // Zero workers is forbidden, so stall the single worker with a
        // first op, then overfill the ring.
        struct Slow;
        impl IoBackend for Slow {
            type Op = ();
            type Output = ();
            fn execute(&self, _: ()) -> ((), Vec<DeviceCharge>) {
                std::thread::sleep(std::time::Duration::from_millis(30));
                ((), Vec::new())
            }
        }
        let r = Reactor::start(
            Arc::new(Slow),
            IoConfig {
                workers: 1,
                queue_depth: 2,
                devices: 1,
                record_intervals: false,
                policy: SchedPolicyKind::Fifo,
            },
        );
        // First submit may begin executing immediately; fill the ring
        // behind it and then overflow.
        r.submit((), 0, 0.0).unwrap();
        let mut rejected = 0;
        for i in 1..=8u64 {
            if r.try_submit((), i, 0.0) == Err(SubmitError::Full) {
                rejected += 1;
            }
        }
        assert!(rejected > 0);
        assert_eq!(r.snapshot().rejected, rejected);
        r.shutdown();
    }

    #[test]
    fn panicking_backend_does_not_hang_consumers() {
        // A panic unwinding out of execute() must still count the
        // worker down, or wait_any() would block forever.
        struct Bomb;
        impl IoBackend for Bomb {
            type Op = bool; // true ⇒ panic
            type Output = u32;
            fn execute(&self, explode: bool) -> (u32, Vec<DeviceCharge>) {
                assert!(!explode, "backend bomb");
                (7, Vec::new())
            }
        }
        let r = Reactor::start(
            Arc::new(Bomb),
            IoConfig {
                workers: 2,
                queue_depth: 8,
                devices: 1,
                record_intervals: false,
                policy: SchedPolicyKind::Fifo,
            },
        );
        let cq = r.completions();
        r.submit(true, 0, 0.0).unwrap(); // kills one worker
        r.submit(false, 1, 0.0).unwrap(); // the survivor serves this
        let mut served = 0;
        r.shutdown(); // joins the dead worker without deadlocking
        while let Some(cqe) = cq.wait_any() {
            assert_eq!(cqe.user_data, 1);
            assert_eq!(cqe.output, 7);
            served += 1;
        }
        // wait_any reached end-of-stream: the panicked worker's
        // guard ran. The panicked op produced no completion.
        assert_eq!(served, 1);
    }

    #[test]
    fn queued_policy_reorders_and_accounts_per_tenant() {
        // Two tenants through the reactor's queued path: with strict
        // priority the high-priority op submitted later completes
        // first, and the snapshot's per-tenant busy rows fold exactly
        // back to the device totals.
        let r = Reactor::start(
            Arc::new(Doubler { devices: 1 }),
            IoConfig {
                workers: 1,
                queue_depth: 16,
                devices: 1,
                record_intervals: false,
                policy: SchedPolicyKind::StrictPriority,
            },
        );
        let lo = SchedTag::default();
        let hi = SchedTag {
            tenant: 1,
            priority: 7,
            ..SchedTag::default()
        };
        // Arrivals 0.1 ms apart against a 1 ms service time: both
        // later ops queue behind the first.
        r.submit_tagged(0, 0, 0.0, lo).unwrap();
        r.submit_tagged(1, 1, 1e-4, lo).unwrap();
        r.submit_tagged(2, 2, 2e-4, hi).unwrap();
        r.quiesce();
        // Only the first decision instant (t=0) lies before the
        // frontier; the queued picks stay open.
        let posted = r.advance_to(2e-4);
        assert_eq!(posted, 1);
        let cq = r.completions();
        let first = cq.poll_any().expect("posted");
        assert_eq!(first.user_data, 0);
        // End of stream flushes the rest: the high-priority op jumps
        // the earlier low-priority one.
        r.shutdown();
        let order: Vec<u64> = std::iter::from_fn(|| cq.wait_any())
            .map(|c| c.user_data)
            .collect();
        assert_eq!(order, [2, 1]);
    }

    #[test]
    fn snapshot_folds_tenant_busy_exactly() {
        let r = Reactor::start(
            Arc::new(Doubler { devices: 2 }),
            IoConfig {
                workers: 1,
                queue_depth: 16,
                devices: 2,
                record_intervals: false,
                policy: SchedPolicyKind::WeightedFair,
            },
        );
        for i in 0..8u64 {
            r.submit_tagged(i, i, 0.0, SchedTag::for_tenant((i % 3) as usize))
                .unwrap();
        }
        r.quiesce();
        let posted = r.advance_to(f64::INFINITY);
        assert_eq!(posted, 8);
        let snap = r.snapshot();
        assert_eq!(snap.tenant_busy.len(), 3);
        assert_eq!(snap.tenant_queue_delay.len(), 3);
        for d in 0..2 {
            let fold: f64 = (0..3).fold(0.0, |acc, t| acc + snap.tenant_busy[t][d]);
            assert_eq!(
                fold.to_bits(),
                snap.device_busy[d].to_bits(),
                "per-tenant busy must conserve device busy exactly"
            );
        }
        // Later tenants on a contended device accrued queue delay.
        assert!(snap.tenant_queue_delay.iter().copied().sum::<f64>() > 0.0);
        let cq = r.completions();
        r.shutdown();
        let mut n = 0;
        while cq.wait_any().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }

    #[test]
    fn closed_loop_latency_grows_with_depth() {
        // The queue-depth knob in one test: same backend, same request
        // count, deeper closed loop ⇒ higher mean virtual latency.
        let run = |depth: u64| {
            let r = Reactor::start(
                Arc::new(Doubler { devices: 1 }),
                IoConfig {
                    workers: 2,
                    queue_depth: depth as usize,
                    devices: 1,
                    record_intervals: false,
                    policy: SchedPolicyKind::Fifo,
                },
            );
            let cq = r.completions();
            for c in 0..depth {
                r.submit(c, c, 0.0).unwrap();
            }
            let mut latencies = Vec::new();
            let mut left = 64u64 - depth;
            while latencies.len() < 64 {
                let cqe = cq.wait_any().expect("live");
                latencies.push(cqe.latency());
                if left > 0 {
                    left -= 1;
                    r.submit(cqe.user_data, cqe.user_data, cqe.completed_vt)
                        .unwrap();
                }
            }
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let shallow = run(1);
        let deep = run(8);
        assert!(
            deep > shallow * 2.0,
            "mean latency shallow {shallow} deep {deep}"
        );
    }
}
