//! # sage-io — completion-queue async I/O with multi-SSD extent
//! sharding
//!
//! The chunk store's serving path needs to keep *thousands* of small
//! random chunk reads in flight across *many* SSDs — that is what the
//! paper's end-to-end win rests on. This crate is the I/O substrate
//! that makes both dimensions first-class:
//!
//! - [`ring`] — a bounded **submission ring**: capacity is the queue-
//!   depth knob; submitters either block (backpressure) or are
//!   rejected-and-counted (load shedding).
//! - [`reactor`] — the **completion-queue reactor**: a small fixed
//!   worker set drains the ring, runs each operation against an
//!   [`IoBackend`], and posts a [`Cqe`] to the completion queue of the
//!   device that finished it. Arbitrarily many operations are in
//!   flight at once; workers bound only CPU parallelism.
//! - [`sched`] — **virtual-time device scheduling**: per-device clocks
//!   turn the device models' service seconds into queued start/finish
//!   instants, so completions carry realistic latencies (queueing
//!   included) while staying deterministic for CI.
//! - [`qos`] — **multi-tenant scheduling policies**: FIFO, strict
//!   priority, weighted fair (SCFQ), and earliest-deadline-first picks
//!   over the scheduler's per-device pending queues, with per-tenant
//!   busy/queue-delay attribution.
//! - [`cqueue`] — per-device **completion queues** with poll/wait
//!   harvesting.
//! - [`mod@file`] — the **real-bytes backend**: per-device container
//!   files served with positioned reads (`pread`) behind the same
//!   submit/complete shape, charging *zero* virtual seconds so the
//!   simulated timeline is untouched when real I/O is on.
//! - [`device`] — **multi-SSD extent sharding**: a [`DeviceMap`]
//!   stripes chunk extents across N [`sage_ssd::SsdModel`]s
//!   (round-robin or capacity-weighted), routes each fetch to its
//!   owning device, and aggregates per-device timing/utilization
//!   snapshots.
//!
//! ```text
//!   clients ──submit──▶ [ submission ring (≤ queue_depth) ]
//!                            │ pop (FIFO)
//!                  ┌─────────┼─────────┐
//!               worker     worker    worker      (fixed set)
//!                  │ execute(op) → output + device charges
//!                  ▼
//!         [ virtual scheduler: per-device clocks ]
//!                  │ dispatch → start/completion instants
//!                  ▼
//!   [ CQ dev0 ] [ CQ dev1 ] … [ CQ devN ]  ◀─poll/wait── clients
//! ```

pub mod cqueue;
pub mod device;
pub mod file;
pub mod qos;
pub mod reactor;
pub mod ring;
pub mod sched;

pub use cqueue::{CompletionQueues, Cqe};
pub use device::{ChunkSlot, DeviceMap, DeviceSnapshot, Placement};
pub use file::{FileBackend, FileReadOp};
pub use qos::{SchedPolicy, SchedPolicyKind, SchedTag};
pub use reactor::{IoBackend, IoConfig, Reactor, ReactorSnapshot, Sqe};
pub use ring::{RingCounters, SubmissionRing, SubmitError};
pub use sched::{ChargeInterval, DeviceCharge, Dispatch, ResolvedOp, VirtualScheduler};
