//! Per-device completion queues.
//!
//! Every finished operation becomes a [`Cqe`] posted to the completion
//! queue of the device that finished it. Consumers either poll one
//! queue ([`CompletionQueues::poll`]), poll across all of them
//! ([`CompletionQueues::poll_any`]), or block for the next completion
//! anywhere ([`CompletionQueues::wait_any`]). The whole set shares one
//! mutex — completion entries are tiny and the reactor's worker count
//! bounds the posting rate, so a finer-grained design would buy
//! nothing but subtlety.
//!
//! `poll_any`/`wait_any` drain completions in **post order**, not
//! device-index order. With one reactor worker, post order equals
//! dispatch order equals submission order, so a consumer that reacts
//! to completions (e.g. a closed-loop driver resubmitting at the
//! completion instant) sees the same order on every run — the virtual
//! timeline stays reproducible no matter how the host schedules the
//! consumer against the posting worker. A device-priority scan would
//! instead let the *number* of entries pending at wake-up (a host-time
//! race) reorder the harvest.

use crate::sched::{ChargeInterval, Dispatch};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// One completed operation.
#[derive(Debug, Clone)]
pub struct Cqe<T> {
    /// Caller-chosen token identifying the submission.
    pub user_data: u64,
    /// Completion queue (device) the entry was posted to.
    pub device: usize,
    /// Virtual instant the operation was submitted.
    pub submitted_vt: f64,
    /// Virtual instant device service began.
    pub started_vt: f64,
    /// Virtual instant the operation completed.
    pub completed_vt: f64,
    /// Total device seconds the operation charged.
    pub device_seconds: f64,
    /// Per-charge service windows, in charge order. Empty unless the
    /// reactor was started with [`IoConfig::record_intervals`]
    /// (tracing) — recording them is observation-only and never moves
    /// the instants above.
    ///
    /// [`IoConfig::record_intervals`]: crate::reactor::IoConfig::record_intervals
    pub intervals: Vec<ChargeInterval>,
    /// The operation's result.
    pub output: T,
}

impl<T> Cqe<T> {
    /// Submit-to-completion virtual latency.
    pub fn latency(&self) -> f64 {
        self.completed_vt - self.submitted_vt
    }

    /// Virtual seconds the operation waited before service began.
    pub fn queue_wait(&self) -> f64 {
        self.started_vt - self.submitted_vt
    }

    pub(crate) fn from_dispatch(
        user_data: u64,
        submitted_vt: f64,
        d: Dispatch,
        intervals: Vec<ChargeInterval>,
        output: T,
    ) -> Cqe<T> {
        Cqe {
            user_data,
            device: d.device,
            submitted_vt,
            started_vt: d.started_vt,
            completed_vt: d.completed_vt,
            device_seconds: d.device_seconds,
            intervals,
            output,
        }
    }
}

#[derive(Debug)]
struct CqState<T> {
    queues: Vec<VecDeque<Cqe<T>>>,
    /// Queue index of every still-queued post, oldest first — the
    /// global post order `poll_any`/`wait_any` drain in. A targeted
    /// [`poll`] removes its device's oldest marker so the invariant
    /// (marker count per device == queue length) survives out-of-band
    /// consumption.
    ///
    /// [`poll`]: CompletionQueues::poll
    order: VecDeque<usize>,
    /// Reactor workers still alive; 0 means no further completions can
    /// ever arrive.
    live_posters: usize,
    completed: u64,
}

impl<T> CqState<T> {
    /// Pops the oldest completion anywhere, in post order.
    fn pop_posted(&mut self) -> Option<Cqe<T>> {
        while let Some(q) = self.order.pop_front() {
            if let Some(cqe) = self.queues[q].pop_front() {
                return Some(cqe);
            }
        }
        // Every post pushes one marker and every pop removes exactly
        // one, so an empty order means empty queues; scan anyway so a
        // completion can never strand.
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Drops the oldest order marker for queue `q` (called when a
    /// targeted poll consumed that queue's front out of band).
    fn drop_marker(&mut self, q: usize) {
        if let Some(ix) = self.order.iter().position(|&d| d == q) {
            self.order.remove(ix);
        }
    }
}

/// The completion side of a reactor: one queue per device.
#[derive(Debug)]
pub struct CompletionQueues<T> {
    state: Mutex<CqState<T>>,
    cv: Condvar,
}

impl<T> CompletionQueues<T> {
    /// A set of `n_devices` queues fed by `posters` workers.
    pub(crate) fn new(n_devices: usize, posters: usize) -> CompletionQueues<T> {
        CompletionQueues {
            state: Mutex::new(CqState {
                queues: (0..n_devices.max(1)).map(|_| VecDeque::new()).collect(),
                order: VecDeque::new(),
                live_posters: posters,
                completed: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of completion queues (devices).
    pub fn n_queues(&self) -> usize {
        self.state.lock().expect("cq poisoned").queues.len()
    }

    /// Total completions posted so far.
    pub fn completed(&self) -> u64 {
        self.state.lock().expect("cq poisoned").completed
    }

    pub(crate) fn post(&self, cqe: Cqe<T>) {
        let mut state = self.state.lock().expect("cq poisoned");
        let q = cqe.device.min(state.queues.len() - 1);
        state.queues[q].push_back(cqe);
        state.order.push_back(q);
        state.completed += 1;
        drop(state);
        self.cv.notify_all();
    }

    /// Called by each worker exactly once on exit; the last one wakes
    /// every blocked consumer so they can observe the end of stream.
    pub(crate) fn poster_done(&self) {
        let mut state = self.state.lock().expect("cq poisoned");
        state.live_posters = state.live_posters.saturating_sub(1);
        if state.live_posters == 0 {
            drop(state);
            self.cv.notify_all();
        }
    }

    /// Pops the oldest completion on one device's queue, if any.
    pub fn poll(&self, device: usize) -> Option<Cqe<T>> {
        let mut state = self.state.lock().expect("cq poisoned");
        let q = device.min(state.queues.len() - 1);
        let cqe = state.queues[q].pop_front()?;
        state.drop_marker(q);
        Some(cqe)
    }

    /// Pops the oldest completion anywhere, in post order (see the
    /// module docs: post order keeps completion-driven loops
    /// reproducible).
    pub fn poll_any(&self) -> Option<Cqe<T>> {
        let mut state = self.state.lock().expect("cq poisoned");
        state.pop_posted()
    }

    /// Blocks until a completion is available anywhere and pops the
    /// oldest-posted one; `None` when the reactor shut down and every
    /// queue is drained.
    pub fn wait_any(&self) -> Option<Cqe<T>> {
        let mut state = self.state.lock().expect("cq poisoned");
        loop {
            if let Some(cqe) = state.pop_posted() {
                return Some(cqe);
            }
            if state.live_posters == 0 {
                return None;
            }
            state = self.cv.wait(state).expect("cq poisoned");
        }
    }

    /// Completions currently queued per device.
    pub fn depths(&self) -> Vec<usize> {
        let state = self.state.lock().expect("cq poisoned");
        state.queues.iter().map(VecDeque::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Dispatch;

    fn cqe(user_data: u64, device: usize) -> Cqe<u32> {
        Cqe::from_dispatch(
            user_data,
            1.0,
            Dispatch {
                started_vt: 2.0,
                completed_vt: 3.5,
                device_seconds: 1.5,
                device,
            },
            Vec::new(),
            42,
        )
    }

    #[test]
    fn routes_to_per_device_queues() {
        let cq: CompletionQueues<u32> = CompletionQueues::new(2, 1);
        cq.post(cqe(1, 0));
        cq.post(cqe(2, 1));
        cq.post(cqe(3, 1));
        assert_eq!(cq.depths(), vec![1, 2]);
        assert_eq!(cq.poll(1).unwrap().user_data, 2);
        assert_eq!(cq.poll(0).unwrap().user_data, 1);
        assert_eq!(cq.poll_any().unwrap().user_data, 3);
        assert!(cq.poll_any().is_none());
        assert_eq!(cq.completed(), 3);
    }

    #[test]
    fn latency_and_wait_derive_from_dispatch() {
        let e = cqe(9, 0);
        assert!((e.latency() - 2.5).abs() < 1e-12);
        assert!((e.queue_wait() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wait_any_ends_after_last_poster() {
        let cq: CompletionQueues<u32> = CompletionQueues::new(1, 1);
        cq.post(cqe(5, 0));
        cq.poster_done();
        assert_eq!(cq.wait_any().unwrap().user_data, 5);
        assert!(cq.wait_any().is_none());
    }

    #[test]
    fn any_pops_follow_post_order_across_devices() {
        // Device-index priority would return 2 (device 0) first; post
        // order must return 1 (device 1).
        let cq: CompletionQueues<u32> = CompletionQueues::new(2, 1);
        cq.post(cqe(1, 1));
        cq.post(cqe(2, 0));
        cq.post(cqe(3, 1));
        assert_eq!(cq.wait_any().unwrap().user_data, 1);
        assert_eq!(cq.poll_any().unwrap().user_data, 2);
        assert_eq!(cq.wait_any().unwrap().user_data, 3);
    }

    #[test]
    fn targeted_polls_leave_post_order_intact() {
        let cq: CompletionQueues<u32> = CompletionQueues::new(2, 1);
        cq.post(cqe(1, 0));
        cq.post(cqe(2, 1));
        cq.post(cqe(3, 0));
        // An out-of-band poll consumes device 0's oldest entry and its
        // order marker with it; the remaining entries still drain in
        // post order (2 before 3).
        assert_eq!(cq.poll(0).unwrap().user_data, 1);
        assert_eq!(cq.poll_any().unwrap().user_data, 2);
        assert_eq!(cq.wait_any().unwrap().user_data, 3);
        assert!(cq.poll_any().is_none());
    }

    #[test]
    fn out_of_range_device_clamps_to_last_queue() {
        let cq: CompletionQueues<u32> = CompletionQueues::new(2, 1);
        cq.post(cqe(1, 7));
        assert_eq!(cq.depths(), vec![0, 1]);
        assert_eq!(cq.poll(7).unwrap().user_data, 1);
    }
}
