//! The bounded submission ring.
//!
//! Clients enqueue submission entries; reactor workers dequeue them.
//! Capacity *is* the queue-depth knob: a full ring either blocks the
//! submitter ([`SubmissionRing::push`], backpressure) or rejects the
//! entry ([`SubmissionRing::try_push`], counted so a server can report
//! shed load). Closing the ring is graceful by default — queued entries
//! are still served — while [`SubmissionRing::close_now`] hands the
//! unserved tail back to the caller for explicit cancellation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The ring is at capacity (only [`SubmissionRing::try_push`]
    /// reports this; the blocking path waits instead).
    Full,
    /// The ring was closed; no further submissions are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "submission ring full"),
            SubmitError::Closed => write!(f, "submission ring closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct RingInner<T> {
    queue: VecDeque<T>,
    closed: bool,
    submitted: u64,
    rejected: u64,
}

/// Counters the ring maintains for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCounters {
    /// Entries accepted into the ring.
    pub submitted: u64,
    /// `try_push` attempts refused because the ring was full.
    pub rejected: u64,
    /// Entries currently queued (accepted, not yet popped).
    pub queued: usize,
}

/// A bounded MPMC queue of submission entries.
#[derive(Debug)]
pub struct SubmissionRing<T> {
    inner: Mutex<RingInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> SubmissionRing<T> {
    /// A ring accepting at most `capacity` queued entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 — a zero-depth ring could never move
    /// an entry.
    pub fn new(capacity: usize) -> SubmissionRing<T> {
        assert!(capacity > 0, "queue depth must be at least 1");
        SubmissionRing {
            inner: Mutex::new(RingInner {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                submitted: 0,
                rejected: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The queue-depth the ring was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the ring is at capacity (counted in
    /// [`RingCounters::rejected`]); [`SubmitError::Closed`] after
    /// close.
    pub fn try_push(&self, entry: T) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.queue.len() >= self.capacity {
            inner.rejected += 1;
            return Err(SubmitError::Full);
        }
        inner.queue.push_back(entry);
        inner.submitted += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the ring is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the ring closed before the entry
    /// could be accepted.
    pub fn push(&self, entry: T) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        while inner.queue.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("ring poisoned");
        }
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        inner.queue.push_back(entry);
        inner.submitted += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest entry, blocking while the ring is empty.
    /// Returns `None` only when the ring is closed *and* drained — a
    /// graceful close still serves everything already queued.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        loop {
            if let Some(entry) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ring poisoned");
        }
    }

    /// Closes the ring gracefully: no new entries, queued entries are
    /// still served.
    pub fn close(&self) {
        self.inner.lock().expect("ring poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the ring immediately, returning the unserved entries so
    /// the caller can cancel them explicitly.
    pub fn close_now(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        inner.closed = true;
        let drained = inner.queue.drain(..).collect();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }

    /// Reads the counters.
    pub fn counters(&self) -> RingCounters {
        let inner = self.inner.lock().expect("ring poisoned");
        RingCounters {
            submitted: inner.submitted,
            rejected: inner.rejected,
            queued: inner.queue.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_counters() {
        let ring = SubmissionRing::new(4);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        let c = ring.counters();
        assert_eq!(c.submitted, 2);
        assert_eq!(c.rejected, 0);
        assert_eq!(c.queued, 0);
    }

    #[test]
    fn try_push_rejects_when_full() {
        let ring = SubmissionRing::new(2);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.try_push(3), Err(SubmitError::Full));
        assert_eq!(ring.counters().rejected, 1);
        // Draining one slot makes room again.
        assert_eq!(ring.pop(), Some(1));
        ring.try_push(3).unwrap();
    }

    #[test]
    fn graceful_close_serves_queued_entries() {
        let ring = SubmissionRing::new(4);
        ring.try_push(7).unwrap();
        ring.close();
        assert_eq!(ring.try_push(8), Err(SubmitError::Closed));
        assert_eq!(ring.pop(), Some(7));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn close_now_returns_unserved_tail() {
        let ring = SubmissionRing::new(4);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.close_now(), vec![1, 2]);
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let ring = Arc::new(SubmissionRing::new(1));
        ring.push(1).unwrap();
        let r2 = Arc::clone(&ring);
        let pusher = std::thread::spawn(move || r2.push(2));
        // The pusher blocks until the consumer makes room.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(ring.pop(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_pushers() {
        let ring = Arc::new(SubmissionRing::new(1));
        ring.push(1).unwrap();
        let r2 = Arc::clone(&ring);
        let pusher = std::thread::spawn(move || r2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.close();
        assert_eq!(pusher.join().unwrap(), Err(SubmitError::Closed));
    }
}
