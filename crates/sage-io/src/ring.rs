//! The bounded submission ring.
//!
//! Clients enqueue submission entries; reactor workers dequeue them.
//! Capacity *is* the queue-depth knob: a full ring either blocks the
//! submitter ([`SubmissionRing::push`], backpressure) or rejects the
//! entry ([`SubmissionRing::try_push`], counted so a server can report
//! shed load). Closing the ring is graceful by default — queued entries
//! are still served — while [`SubmissionRing::close_now`] hands the
//! unserved tail back to the caller for explicit cancellation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The ring is at capacity (only [`SubmissionRing::try_push`]
    /// reports this; the blocking path waits instead).
    Full,
    /// The ring was closed; no further submissions are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "submission ring full"),
            SubmitError::Closed => write!(f, "submission ring closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct RingInner<T> {
    queue: VecDeque<T>,
    closed: bool,
    submitted: u64,
    rejected: u64,
}

/// Counters the ring maintains for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCounters {
    /// Entries accepted into the ring.
    pub submitted: u64,
    /// `try_push` attempts refused because the ring was full.
    pub rejected: u64,
    /// Entries currently queued (accepted, not yet popped).
    pub queued: usize,
}

/// A bounded MPMC queue of submission entries.
#[derive(Debug)]
pub struct SubmissionRing<T> {
    inner: Mutex<RingInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> SubmissionRing<T> {
    /// A ring accepting at most `capacity` queued entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 — a zero-depth ring could never move
    /// an entry.
    pub fn new(capacity: usize) -> SubmissionRing<T> {
        assert!(capacity > 0, "queue depth must be at least 1");
        SubmissionRing {
            inner: Mutex::new(RingInner {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                submitted: 0,
                rejected: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The queue-depth the ring was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the ring is at capacity (counted in
    /// [`RingCounters::rejected`]); [`SubmitError::Closed`] after
    /// close.
    pub fn try_push(&self, entry: T) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.queue.len() >= self.capacity {
            inner.rejected += 1;
            return Err(SubmitError::Full);
        }
        inner.queue.push_back(entry);
        inner.submitted += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the ring is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the ring closed before the entry
    /// could be accepted.
    pub fn push(&self, entry: T) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        while inner.queue.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("ring poisoned");
        }
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        inner.queue.push_back(entry);
        inner.submitted += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues a batch of entries in order, blocking while the ring
    /// is full (backpressure), taking the ring lock **once per
    /// capacity window** instead of once per entry. Entries already
    /// accepted stay accepted if the ring closes mid-batch; the
    /// return value says how many got in.
    ///
    /// # Errors
    ///
    /// `Err((SubmitError::Closed, accepted))` when the ring closed
    /// before the whole batch was accepted, with `accepted` entries
    /// already enqueued (they will still be served on a graceful
    /// close).
    pub fn push_batch(
        &self,
        entries: impl IntoIterator<Item = T>,
    ) -> Result<usize, (SubmitError, usize)> {
        // Materialize the batch *before* taking the ring lock: the
        // caller's iterator can run arbitrary code (or block), and
        // holding the mutex across `next()` would stall every
        // consumer `pop` — a deadlock if the iterator itself waits on
        // a queued completion.
        let entries: Vec<T> = entries.into_iter().collect();
        let mut accepted = 0usize;
        let mut inner = self.inner.lock().expect("ring poisoned");
        for entry in entries {
            while inner.queue.len() >= self.capacity && !inner.closed {
                // Wake consumers before parking: the batch may have
                // filled the ring before any not_empty signal went
                // out, and a sleeping consumer is the only thing that
                // can make room.
                self.not_empty.notify_all();
                inner = self.not_full.wait(inner).expect("ring poisoned");
            }
            if inner.closed {
                drop(inner);
                self.not_empty.notify_all();
                return Err((SubmitError::Closed, accepted));
            }
            inner.queue.push_back(entry);
            inner.submitted += 1;
            accepted += 1;
        }
        drop(inner);
        self.not_empty.notify_all();
        Ok(accepted)
    }

    /// Dequeues the oldest entry, blocking while the ring is empty.
    /// Returns `None` only when the ring is closed *and* drained — a
    /// graceful close still serves everything already queued.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        loop {
            if let Some(entry) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ring poisoned");
        }
    }

    /// Closes the ring gracefully: no new entries, queued entries are
    /// still served.
    pub fn close(&self) {
        self.inner.lock().expect("ring poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the ring immediately, returning the unserved entries so
    /// the caller can cancel them explicitly.
    pub fn close_now(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        inner.closed = true;
        let drained = inner.queue.drain(..).collect();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }

    /// Reads the counters.
    pub fn counters(&self) -> RingCounters {
        let inner = self.inner.lock().expect("ring poisoned");
        RingCounters {
            submitted: inner.submitted,
            rejected: inner.rejected,
            queued: inner.queue.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_counters() {
        let ring = SubmissionRing::new(4);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        let c = ring.counters();
        assert_eq!(c.submitted, 2);
        assert_eq!(c.rejected, 0);
        assert_eq!(c.queued, 0);
    }

    #[test]
    fn try_push_rejects_when_full() {
        let ring = SubmissionRing::new(2);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.try_push(3), Err(SubmitError::Full));
        assert_eq!(ring.counters().rejected, 1);
        // Draining one slot makes room again.
        assert_eq!(ring.pop(), Some(1));
        ring.try_push(3).unwrap();
    }

    #[test]
    fn graceful_close_serves_queued_entries() {
        let ring = SubmissionRing::new(4);
        ring.try_push(7).unwrap();
        ring.close();
        assert_eq!(ring.try_push(8), Err(SubmitError::Closed));
        assert_eq!(ring.pop(), Some(7));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn close_now_returns_unserved_tail() {
        let ring = SubmissionRing::new(4);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.close_now(), vec![1, 2]);
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let ring = Arc::new(SubmissionRing::new(1));
        ring.push(1).unwrap();
        let r2 = Arc::clone(&ring);
        let pusher = std::thread::spawn(move || r2.push(2));
        // The pusher blocks until the consumer makes room.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(ring.pop(), Some(2));
    }

    #[test]
    fn batch_push_keeps_order_and_survives_overflow() {
        // A batch larger than the ring must drain through a consumer
        // without deadlocking, in submission order.
        let ring = Arc::new(SubmissionRing::new(2));
        let r2 = Arc::clone(&ring);
        let producer = std::thread::spawn(move || r2.push_batch(0..10));
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(ring.pop().unwrap());
        }
        assert_eq!(producer.join().unwrap(), Ok(10));
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(ring.counters().submitted, 10);
    }

    #[test]
    fn batch_push_reports_the_accepted_prefix_on_close() {
        let ring = SubmissionRing::new(8);
        ring.push_batch([1, 2]).unwrap();
        ring.close();
        assert_eq!(ring.push_batch([3, 4]), Err((SubmitError::Closed, 0)));
        // The pre-close prefix is still served.
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_pushers() {
        let ring = Arc::new(SubmissionRing::new(1));
        ring.push(1).unwrap();
        let r2 = Arc::clone(&ring);
        let pusher = std::thread::spawn(move || r2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.close();
        assert_eq!(pusher.join().unwrap(), Err(SubmitError::Closed));
    }
}
