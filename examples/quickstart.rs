//! Quickstart: compress a read set with SAGe, decompress it, check
//! losslessness and the compression ratio — then serve the same reads
//! with random access through the typed client API (`sage::client`).
//!
//! Run with: `cargo run --release --example quickstart`

use sage::client::DatasetBuilder;
use sage::core::{OutputFormat, SageCompressor, SageDecompressor};
use sage::genomics::sim::{simulate_dataset, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a short-read dataset (stand-in for a FASTQ file).
    let ds = simulate_dataset(&DatasetProfile::rs1().scaled(0.25), 42);
    println!(
        "dataset: {} reads, {} bases, {} quality bytes",
        ds.reads.len(),
        ds.reads.total_bases(),
        ds.reads.total_quality_bytes()
    );

    // 2. Compress. `store_order` keeps the original read order so we
    //    can compare read-for-read below (costs a few bits per read;
    //    leave it off for archival use, like Spring's reorder mode).
    let compressor = SageCompressor::new().with_store_order(true);
    let (archive, stats) = compressor.compress_detailed(&ds.reads)?;
    println!(
        "compressed: DNA {:.2}x, quality {:.2}x ({} -> {} bytes total)",
        stats.dna_ratio(),
        stats.quality_ratio(),
        stats.uncompressed_dna_bytes + stats.uncompressed_quality_bytes,
        archive.total_bytes()
    );
    println!(
        "mapping: {} unmapped, {} chimeric, {} corner-case reads",
        stats.n_unmapped, stats.n_chimeric, stats.n_corner
    );

    // 3. Serialize and decompress (what a `SAGe_Read` would stream).
    let bytes = archive.to_bytes();
    let restored = SageDecompressor::new(OutputFormat::Ascii).decompress_bytes(&bytes)?;

    // 4. Verify losslessness.
    assert_eq!(restored.len(), ds.reads.len());
    for (a, b) in ds.reads.iter().zip(restored.iter()) {
        assert_eq!(a.seq, b.seq, "base-level mismatch");
        assert_eq!(a.qual, b.qual, "quality mismatch");
    }
    println!("round trip verified: every base and quality value restored");

    // 5. Whole-archive decode is the archival path. For *serving*,
    //    encode into the sharded chunk store instead and open a
    //    session: gets return typed tickets and decode only the
    //    chunks they touch.
    let dataset = DatasetBuilder::new().chunk_reads(256).encode(&ds.reads)?;
    let session = dataset.session();
    let window = session.get(100..150)?.wait()?;
    assert_eq!(window.value.len(), 50);
    for (a, b) in window.value.iter().zip(&ds.reads.reads()[100..150]) {
        assert_eq!(a.seq, b.seq, "served read mismatch");
    }
    println!(
        "served a 50-read random window: {} chunk decoded, {} cache hits",
        window.report.cache_misses(),
        window.report.cache_hits()
    );
    Ok(())
}
