//! Store server: encode a dataset into the sharded chunk store, then
//! serve concurrent random-access queries through the completion-queue
//! reactor — with chunk extents striped across a two-SSD fleet, so
//! every cache miss is charged a `SAGe_Read` extent command against
//! its owning device model.
//!
//! Run with: `cargo run --release --example store_server`

use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::genomics::ReadSet;
use sage::ssd::SsdConfig;
use sage::store::{
    encode_sharded, CachePolicy, EngineConfig, Request, Response, StoreEngine, StoreOptions,
    StoreServer,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a read set and shard it into 64-read chunks,
    //    compressed in parallel by the worker pool.
    let ds = simulate_dataset(&DatasetProfile::rs1().scaled(0.05), 7);
    let sharded = encode_sharded(&ds.reads, &StoreOptions::new(64))?;
    println!(
        "sharded: {} reads -> {} chunks, {} blob bytes ({:.2}x vs raw bases)",
        sharded.total_reads(),
        sharded.n_chunks(),
        sharded.blob.len(),
        ds.reads.total_bases() as f64 / sharded.blob.len() as f64,
    );

    // 2. Open the engine over a two-device PCIe fleet (chunk extents
    //    striped round-robin) with a small segmented-LRU cache, and
    //    put the reactor-backed bounded-queue server in front of it.
    let engine = Arc::new(StoreEngine::open(
        sharded,
        EngineConfig::default()
            .with_cache_chunks(6)
            .with_cache_policy(CachePolicy::SegmentedLru)
            .with_ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::pcie()]),
    ));
    let server = Arc::new(StoreServer::start(Arc::clone(&engine), 4, 16));

    // 3. Four clients issue interleaved random-range gets.
    let total = engine.total_reads();
    std::thread::scope(|s| {
        for c in 0..4u64 {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for i in 0..50u64 {
                    let start = (c * 131 + i * 37) % total;
                    let end = (start + 20).min(total);
                    let Response::Reads(reads) =
                        server.call(Request::Get(start..end)).expect("get")
                    else {
                        panic!("wrong response kind")
                    };
                    assert_eq!(reads.len() as u64, end - start);
                }
            });
        }
    });

    // 4. A predicate scan and an append go through the same queue.
    let Response::Reads(n_heavy) = server.call(Request::Scan(Box::new(|r| r.len() >= 100)))? else {
        panic!("wrong response kind")
    };
    let extra = ReadSet::from_reads(ds.reads.reads()[..32].to_vec());
    let Response::Appended(first_new) = server.call(Request::Append(extra))? else {
        panic!("wrong response kind")
    };
    println!(
        "scan matched {} reads; append placed new reads at id {first_new}",
        n_heavy.len()
    );

    // 5. Report what the store observed.
    let stats = engine.cache_stats();
    let timing = engine.timing_snapshot();
    println!(
        "served {} requests; cache {:.1}% hits ({} misses, {} evictions)",
        engine.requests_served(),
        stats.hit_rate() * 100.0,
        stats.misses,
        stats.evictions
    );
    println!(
        "devices charged {:.3} ms across {} chunk reads + {} appends",
        timing.total_seconds() * 1e3,
        timing.reads,
        timing.writes
    );
    for d in engine.device_snapshots() {
        println!(
            "  device {} ({}): {} chunks, {} reads, {:.3} ms busy",
            d.device,
            d.name,
            d.chunks,
            d.reads,
            (d.read_seconds + d.write_seconds) * 1e3
        );
    }
    let qstats = server.stats();
    println!(
        "queue: {} submitted, {} completed, {} shed, {} cancelled",
        qstats.submitted, qstats.completed, qstats.rejected, qstats.cancelled
    );
    Ok(())
}
