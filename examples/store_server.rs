//! Store serving: encode a dataset into the sharded chunk store and
//! serve concurrent random-access queries through the typed session
//! API (`sage::client`) — with chunk extents striped across a two-SSD
//! fleet, so every cache miss is charged a `SAGe_Read` extent command
//! against its owning device model.
//!
//! One builder folds every knob (codec, cache, fleet, serving);
//! sessions return typed tickets (`get → Ticket<ReadView>` — a
//! zero-copy view over the cached chunks — `append →
//! Ticket<u64>`), and every completion carries an `OpReport` with the
//! operation's device charges, cache outcome, and virtual latency.
//!
//! Run with: `cargo run --release --example store_server`

use sage::client::{DatasetBuilder, SubmitMode};
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::genomics::ReadSet;
use sage::ssd::SsdConfig;
use sage::store::CachePolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a read set and build the served dataset in one
    //    fluent pass: 64-read chunks compressed in parallel, a small
    //    segmented-LRU cache, chunk extents striped round-robin over
    //    a two-device PCIe fleet, four reactor workers behind a
    //    16-deep submission ring. Conflicting knobs (say, `ssd` plus
    //    `ssd_fleet`) would fail here with a typed ConfigError.
    let ds = simulate_dataset(&DatasetProfile::rs1().scaled(0.05), 7);
    let dataset = DatasetBuilder::new()
        .chunk_reads(64)
        .cache_chunks(6)
        .cache_policy(CachePolicy::SegmentedLru)
        .ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::pcie()])
        .server_workers(4)
        .queue_depth(16)
        .encode(&ds.reads)?;
    println!(
        "serving {} reads across {} devices ({} blob bytes)",
        dataset.total_reads(),
        dataset.engine().n_devices(),
        ds.reads.total_bases(),
    );

    // 2. Four clients issue interleaved random-range gets, each on
    //    its own session. Tickets are typed: no response enum to
    //    match, a `get` can only resolve to reads.
    let total = dataset.total_reads();
    std::thread::scope(|s| {
        for c in 0..4u64 {
            let session = dataset.session();
            s.spawn(move || {
                for i in 0..50u64 {
                    let start = (c * 131 + i * 37) % total;
                    let end = (start + 20).min(total);
                    let reads = session
                        .get(start..end)
                        .expect("submit")
                        .join()
                        .expect("get");
                    assert_eq!(reads.len() as u64, end - start);
                }
            });
        }
    });

    // 3. A predicate scan and an append flow through the same queue —
    //    and their completions report what serving them cost.
    let session = dataset.session().with_mode(SubmitMode::Block);
    let scan = session.scan(|r| r.len() >= 100)?.wait()?;
    println!(
        "scan matched {} reads: touched {} chunks ({} cached), charged {:.3} ms of device time",
        scan.value.len(),
        scan.report.chunks_touched(),
        scan.report.cache_hits(),
        scan.report.charges().iter().map(|c| c.seconds).sum::<f64>() * 1e3,
    );
    let extra = ReadSet::from_reads(ds.reads.reads()[..32].to_vec());
    let append = session.append(&extra)?.wait()?;
    println!(
        "append placed new reads at id {} ({} chunks written)",
        append.value,
        append.report.chunks_touched()
    );

    // 4. Report what the store observed.
    let stats = dataset.cache_stats();
    let timing = dataset.timing_snapshot();
    println!(
        "served {} requests; cache {:.1}% hits ({} misses, {} evictions)",
        dataset.engine().requests_served(),
        stats.hit_rate() * 100.0,
        stats.misses,
        stats.evictions
    );
    println!(
        "devices charged {:.3} ms across {} chunk reads + {} appends",
        timing.total_seconds() * 1e3,
        timing.reads,
        timing.writes
    );
    for d in dataset.device_snapshots() {
        println!(
            "  device {} ({}): {} chunks, {} reads, {:.3} ms busy",
            d.device,
            d.name,
            d.chunks,
            d.reads,
            (d.read_seconds + d.write_seconds) * 1e3
        );
    }
    let qstats = dataset.stats();
    println!(
        "queue: {} submitted, {} completed, {} shed, {} cancelled",
        qstats.submitted, qstats.completed, qstats.rejected, qstats.cancelled
    );
    dataset.shutdown();
    Ok(())
}
