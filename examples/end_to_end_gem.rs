//! End-to-end integration with a read-mapping accelerator (the paper's
//! GEM case study, mode 1 of Fig. 12).
//!
//! Compresses a dataset with the real codec to obtain true ratios,
//! then runs the pipelined system simulation for several preparation
//! configurations and reports throughput, bottleneck, and energy.
//!
//! Run with: `cargo run --release --example end_to_end_gem`

use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::pipeline::{
    run_experiment, run_store_experiment, AnalysisKind, DatasetModel, PrepKind, StoreServing,
    SystemConfig,
};
use sage_baselines::{GzipLike, SpringLike};
use sage_core::SageCompressor;
use sage_genomics::fastq::read_set_to_fastq;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = simulate_dataset(&DatasetProfile::rs2().scaled(0.25), 7);

    // Measure real compression ratios with all three codecs.
    let fastq = read_set_to_fastq(&ds.reads);
    let pigz_ratio = fastq.len() as f64 / GzipLike::new().compress(&fastq).len() as f64;
    let (_, spring) = SpringLike::new().compress_detailed(&ds.reads);
    let (_, sage) = SageCompressor::new().compress_detailed(&ds.reads)?;
    let ratio = |dna_in: u64, dna_out: u64, q_in: u64, q_out: u64| {
        (dna_in + q_in) as f64 / (dna_out + q_out) as f64
    };

    let model = DatasetModel {
        name: ds.profile.name.clone(),
        total_bases: ds.reads.total_bases() as f64,
        n_reads: ds.reads.len() as f64,
        ratio_pigz: pigz_ratio,
        ratio_spring: ratio(
            spring.uncompressed_dna_bytes,
            spring.compressed_dna_bytes,
            spring.uncompressed_quality_bytes,
            spring.compressed_quality_bytes,
        ),
        ratio_sage: ratio(
            sage.uncompressed_dna_bytes,
            sage.compressed_dna_bytes,
            sage.uncompressed_quality_bytes,
            sage.compressed_quality_bytes,
        ),
        isf_filter_fraction: ds.profile.isf_filter_fraction,
    };
    println!(
        "measured ratios: pigz {:.1}x, spring-like {:.1}x, SAGe {:.1}x\n",
        model.ratio_pigz, model.ratio_spring, model.ratio_sage
    );

    let sys = SystemConfig::pcie();
    println!(
        "{:<10} {:>14} {:>12} {:>12}",
        "prep", "MReads/s", "bottleneck", "energy (J)"
    );
    for prep in PrepKind::all() {
        let o = run_experiment(prep, AnalysisKind::Gem, &model, &sys);
        println!(
            "{:<10} {:>14.2} {:>12} {:>12.1}",
            prep.label(),
            o.reads_per_sec / 1e6,
            o.bottleneck,
            o.energy_joules
        );
    }
    println!("\nSAGe should match 0TimeDec: decompression is no longer the slowest stage.");

    // The SAGeStore row above uses the analytical host-decode plateau.
    // Serve the actual reads through a `sage::client` session instead
    // and measure the rate the store really sustains on its virtual
    // device timeline — the store-served scenario and the chunk store
    // share one serving machinery.
    let serving = StoreServing::build(&ds.reads, &sys, 256)?;
    let measured = serving.measured_prep_rate(16, 256)?;
    let o = run_store_experiment(AnalysisKind::Gem, &model, &sys, measured);
    println!(
        "\nstore-served (measured through a session): prep {:.2} Gbase/s -> {:.2} MReads/s, {} bound",
        measured / 1e9,
        o.reads_per_sec / 1e6,
        o.bottleneck
    );
    Ok(())
}
