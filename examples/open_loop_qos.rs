//! Open-loop QoS in one file: drive the same served dataset at three
//! Poisson arrival rates — comfortable, near-saturation, and
//! overloaded — and watch the classic storage-QoS shape fall out of
//! the virtual timeline: achieved throughput tracks offered load
//! until the knee, then plateaus while p99 latency pins at the queue
//! bound and the excess arrivals are shed.
//!
//! Everything is seeded: run it twice and every number repeats
//! bit-for-bit (`sage::workload` derives arrival instants and the op
//! stream from `OpenLoopSpec::seed` alone).
//!
//! Run with: `cargo run --release --example open_loop_qos`

use sage::client::DatasetBuilder;
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::ssd::SsdConfig;
use sage::workload::{Arrivals, OpMix, OpenLoopSpec, Pattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-SSD dataset with caching off, so every operation pays its
    // device and the latency curve is pure queueing + service.
    let ds = simulate_dataset(&DatasetProfile::rs1().scaled(0.02), 13);
    let build = || {
        DatasetBuilder::new()
            .chunk_reads(32)
            .cache_chunks(0)
            .ssd_fleet(vec![SsdConfig::pcie(), SsdConfig::pcie()])
            .encode(&ds.reads)
    };
    println!("serving {} reads over 2 SSDs, open loop\n", ds.reads.len());

    // Calibrate the fleet's capacity from a trickle-rate run: mean
    // device-seconds per op → ops/s the devices can absorb.
    let mut spec = OpenLoopSpec::new(Arrivals::Fixed { rate: 1.0 });
    spec.pattern = Pattern::Zipf {
        theta: 1.0,
        span: 32,
    };
    spec.mix = OpMix::gets();
    spec.requests = 64;
    let capacity = build()?.drive_open_loop(&spec)?.capacity_estimate(2);
    println!("calibrated capacity ≈ {capacity:.0} req/s");

    println!(
        "\n{:>10} {:>11} {:>6} {:>9} {:>9} {:>9}",
        "offered/s", "achieved/s", "shed", "p50 ms", "p99 ms", "p999 ms"
    );
    for fraction in [0.4, 0.9, 2.5] {
        spec.arrivals = Arrivals::Poisson {
            rate: fraction * capacity,
        };
        spec.requests = 400;
        spec.queue_depth = 32;
        let report = build()?.drive_open_loop(&spec)?;
        println!(
            "{:>10.0} {:>11.0} {:>6} {:>9.3} {:>9.3} {:>9.3}",
            report.offered_rate,
            report.achieved_rate,
            report.shed,
            report.latency.p50_ms,
            report.latency.p99_ms,
            report.latency.p999_ms,
        );
    }
    println!(
        "\nbelow the knee offered ≈ achieved and nothing sheds; past it \
         the plateau is the knee and p99 pins at the queue bound."
    );
    Ok(())
}
