//! Dataset explorer: synthesize a read set, map it, and print the
//! statistical properties SAGe's encodings exploit — the same analyses
//! behind the paper's Fig. 7 and Fig. 10 — plus the per-optimization
//! size breakdown (Fig. 17) for this dataset.
//!
//! Run with: `cargo run --release --example dataset_explorer -- [short|long]`

use sage::client::DatasetBuilder;
use sage::core::ablation::{ablation_breakdowns, OptLevel};
use sage::core::SageCompressor;
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::genomics::stats::{
    chimeric_mismatch_base_fraction, matching_position_bits_histogram, mismatch_count_histogram,
    mismatch_position_bits_histogram,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args().nth(1).unwrap_or_else(|| "long".into());
    let profile = match kind.as_str() {
        "short" => DatasetProfile::rs2().scaled(0.25),
        _ => DatasetProfile::rs4().scaled(0.25),
    };
    let ds = simulate_dataset(&profile, 11);
    println!(
        "{}: {} reads, {} bases",
        profile.name,
        ds.reads.len(),
        ds.reads.total_bases()
    );

    let (consensus, alignments) = SageCompressor::new().analyze(&ds.reads)?;
    println!(
        "consensus: {} bases ({}x smaller than the reads)",
        consensus.seq.len(),
        ds.reads.total_bases() / consensus.seq.len().max(1)
    );
    let unmapped = alignments.iter().filter(|a| a.is_unmapped()).count();
    println!(
        "mapped {}/{} reads ({} chimeric), {:.1}% of mismatch bases in chimeric reads",
        ds.reads.len() - unmapped,
        ds.reads.len(),
        alignments.iter().filter(|a| a.segments.len() > 1).count(),
        chimeric_mismatch_base_fraction(&alignments) * 100.0,
    );

    println!("\nmismatch-position delta bits (Property 1):");
    for (bits, f) in mismatch_position_bits_histogram(&alignments)
        .fractions()
        .iter()
        .enumerate()
    {
        if *f > 0.002 {
            println!("  {bits:>2} bits {:>5.1}%", f * 100.0);
        }
    }
    println!("matching-position delta bits after reorder (Property 6):");
    for (bits, f) in matching_position_bits_histogram(&alignments)
        .fractions()
        .iter()
        .enumerate()
    {
        if *f > 0.002 {
            println!("  {bits:>2} bits {:>5.1}%", f * 100.0);
        }
    }
    let counts = mismatch_count_histogram(&alignments);
    println!(
        "reads with zero mismatches (Property 2): {:.1}%",
        counts.fractions().first().copied().unwrap_or(0.0) * 100.0
    );

    let n_counts: Vec<usize> = ds.reads.iter().map(|r| r.seq.n_positions().len()).collect();
    let bds = ablation_breakdowns(&ds.reads, &alignments, &n_counts, 0.01);
    let no = bds[0].1.total_bits() as f64;
    println!("\ncumulative optimization effect (Fig. 17 style):");
    for (level, b) in &bds {
        println!(
            "  {:>2}: {:>6.1}% of raw mismatch-information size",
            level.label(),
            b.total_bits() as f64 / no * 100.0
        );
    }
    let o4 = bds
        .iter()
        .find(|(l, _)| *l == OptLevel::O4)
        .expect("O4 present");
    println!(
        "SAGe's tuned encoding stores the mismatch information in {:.1}x less space",
        no / o4.1.total_bits() as f64
    );

    // Finally, the access-path view: serve the same dataset through
    // the typed client API and pull one random window — the report
    // shows how few chunks a windowed get actually decodes.
    let chunk_reads = (ds.reads.len() / 16).max(4);
    let dataset = DatasetBuilder::new()
        .chunk_reads(chunk_reads)
        .cache_chunks(8)
        .encode(&ds.reads)?;
    let mid = dataset.total_reads() / 2;
    let span = (2 * chunk_reads as u64).min(dataset.total_reads() - mid);
    let window = dataset.session().get(mid..mid + span)?.wait()?;
    println!(
        "\nrandom access: a {span}-read window at id {mid} decoded {} of {} chunks",
        window.report.chunks_touched(),
        ds.reads.len().div_ceil(chunk_reads),
    );
    Ok(())
}
