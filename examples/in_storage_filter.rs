//! In-storage processing integration (the paper's GenStore case study,
//! mode 3 of Fig. 12): SAGe's hardware inside the SSD controller feeds
//! an in-storage filter, and only unfiltered reads cross the host
//! interface — in 2-bit packed `SAGe_Read` format.
//!
//! Also demonstrates the storage-side machinery: the aligned data
//! layout, the genomic FTL, and grouped garbage collection that
//! preserves multi-plane alignment.
//!
//! Run with: `cargo run --release --example in_storage_filter`

use sage::client::DatasetBuilder;
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::hw::{HwCost, IntegrationMode};
use sage::pipeline::{run_experiment, AnalysisKind, DatasetModel, PrepKind, SystemConfig};
use sage::ssd::interface::ReadFormat;
use sage::ssd::{SsdCommand, SsdConfig, SsdModel};

fn main() {
    // --- Storage side: write a compressed read set with SAGe_Write ---
    let mut ssd = SsdModel::new(SsdConfig::pcie());
    let compressed_bytes = 256 << 20; // a 256 MiB SAGe archive
    let w = ssd.execute(SsdCommand::SageWrite {
        bytes: compressed_bytes,
    });
    println!(
        "SAGe_Write: {} MiB placed in {:.2} ms, aligned layout: {}",
        compressed_bytes >> 20,
        w.seconds * 1e3,
        ssd.ftl().genomic_alignment_holds()
    );
    let r = ssd.execute(SsdCommand::SageRead {
        bytes: compressed_bytes,
        format: ReadFormat::Packed2,
    });
    println!(
        "SAGe_Read : streamed at {:.2} GB/s internal bandwidth",
        compressed_bytes as f64 / r.seconds / 1e9
    );

    // --- Hardware budget: what mode-3 integration costs ---
    let hw = HwCost::new(ssd.config().channels, IntegrationMode::InSsd);
    println!(
        "SAGe logic: {:.4} mm2, {:.2} mW ({:.2}% of the controller cores)\n",
        hw.total_area_mm2(),
        hw.total_power_mw(),
        hw.fraction_of_ssd_controller_cores() * 100.0
    );

    // --- System side: SAGeSSD + ISF vs alternatives ---
    let model = DatasetModel {
        name: "metagenomic-abundance".into(),
        isf_filter_fraction: 0.8, // GenStore-EF-style high-filter task
        ..DatasetModel::example_short()
    };
    let sys = SystemConfig::pcie();
    let plain = run_experiment(PrepKind::SageHw, AnalysisKind::Gem, &model, &sys);
    let ideal = run_experiment(PrepKind::ZeroTimeDec, AnalysisKind::Gem, &model, &sys);
    let isf = run_experiment(
        PrepKind::SageSsd,
        AnalysisKind::GenStoreIsf {
            filter_fraction: model.isf_filter_fraction,
        },
        &model,
        &sys,
    );
    println!(
        "SAGe (outside SSD) : {:>8.2} MReads/s",
        plain.reads_per_sec / 1e6
    );
    println!(
        "0TimeDec (no ISF)  : {:>8.2} MReads/s  <- even an ideal decompressor",
        ideal.reads_per_sec / 1e6
    );
    println!("                                        cannot use the in-storage filter");
    println!(
        "SAGeSSD + ISF      : {:>8.2} MReads/s  ({:.1}x over 0TimeDec)",
        isf.reads_per_sec / 1e6,
        ideal.seconds / isf.seconds
    );

    // --- Store-served filtering: the same idea through a session ---
    // A predicate scan over the chunk store is the software analogue
    // of the ISF: the store walks every chunk (charging its devices)
    // and only the matching reads come back to the caller. The
    // OpReport shows what crossing the whole dataset cost.
    let ds = simulate_dataset(&DatasetProfile::tiny_short(), 23);
    let dataset = DatasetBuilder::new()
        .chunk_reads(32)
        .cache_chunks(0) // every chunk fetch pays its device
        .ssd(SsdConfig::pcie())
        .encode(&ds.reads)
        .expect("serve dataset");
    // Abundance-style filter stand-in: keep reads whose leading
    // k-mer starts with A (a content predicate the host never sees
    // the rejected reads for).
    let scan = dataset
        .session()
        .scan(|r| r.seq.as_slice().first() == Some(&sage::genomics::Base::A))
        .expect("submit")
        .wait()
        .expect("scan");
    println!(
        "\nstore-served filter: {} of {} reads pass ({:.0}% filtered); \
         scan touched {} chunks, charged {:.3} ms of device time",
        scan.value.len(),
        ds.reads.len(),
        (1.0 - scan.value.len() as f64 / ds.reads.len() as f64) * 100.0,
        scan.report.chunks_touched(),
        scan.report.device_seconds * 1e3,
    );
}
