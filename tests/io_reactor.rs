//! End-to-end: the completion-queue reactor serving the multi-SSD
//! chunk store through the facade crate.
//!
//! The bench harness (`io_sweep`) measures this path; these tests pin
//! its semantics — data correctness under striping, virtual-time
//! queueing behavior, and the server adapter's shed/cancel contract.

use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::io::{IoConfig, Reactor};
use sage::pipeline::SystemConfig;
use sage::store::{
    encode_sharded, EngineBackend, EngineConfig, Request, Response, StoreEngine, StoreOptions,
};
use std::sync::Arc;

fn striped_engine(
    devices: usize,
    cache_chunks: usize,
) -> (Arc<StoreEngine>, sage::genomics::ReadSet) {
    let reads = simulate_dataset(&DatasetProfile::tiny_short(), 33).reads;
    let store = encode_sharded(&reads, &StoreOptions::new(16)).expect("encode");
    let fleet = SystemConfig::pcie().with_ssds(devices).device_configs();
    let engine = Arc::new(StoreEngine::open(
        store,
        EngineConfig::default()
            .with_cache_chunks(cache_chunks)
            .with_ssd_fleet(fleet),
    ));
    (engine, reads)
}

#[test]
fn reactor_serves_striped_gets_bit_identically() {
    let (engine, reads) = striped_engine(4, 0);
    let n = engine.total_reads();
    let reactor = Reactor::start(
        Arc::new(EngineBackend::new(Arc::clone(&engine))),
        IoConfig {
            workers: 3,
            queue_depth: 8,
            devices: 4,
        },
    );
    let cq = reactor.completions();
    // 40 interleaved ranges, token ↦ range start so completions are
    // checkable out of order.
    for i in 0..40u64 {
        let start = (i * 7) % n;
        let end = (start + 5).min(n);
        reactor
            .submit(Request::Get(start..end), start, 0.0)
            .expect("submit");
    }
    for _ in 0..40 {
        let cqe = cq.wait_any().expect("live reactor");
        let start = cqe.user_data;
        let end = (start + 5).min(n);
        match cqe.output.expect("get") {
            Response::Reads(rs) => {
                assert_eq!(rs.len() as u64, end - start);
                for (k, r) in rs.iter().enumerate() {
                    assert_eq!(r.seq, reads.reads()[start as usize + k].seq);
                    assert_eq!(r.qual, reads.reads()[start as usize + k].qual);
                }
            }
            other => panic!("wrong response {other:?}"),
        }
        // Cold cache: every request charged at least one device.
        assert!(cqe.device_seconds > 0.0);
        assert!(cqe.completed_vt >= cqe.started_vt);
    }
    let snap = reactor.snapshot();
    assert_eq!(snap.completed, 40);
    assert_eq!(snap.device_busy.len(), 4);
    assert!(
        snap.device_busy.iter().filter(|b| **b > 0.0).count() >= 2,
        "striping engaged {:?}",
        snap.device_busy
    );
    reactor.shutdown();
}

#[test]
fn warm_cache_requests_cost_no_device_time() {
    let (engine, _) = striped_engine(2, 64);
    let reactor = Reactor::start(
        Arc::new(EngineBackend::new(engine)),
        IoConfig {
            workers: 1,
            queue_depth: 4,
            devices: 2,
        },
    );
    let cq = reactor.completions();
    reactor.submit(Request::Get(0..16), 0, 0.0).expect("cold");
    let cold = cq.wait_any().expect("live");
    assert!(cold.output.is_ok());
    assert!(cold.device_seconds > 0.0);
    // Same chunk again: served from cache, zero virtual latency.
    reactor.submit(Request::Get(0..16), 1, 0.0).expect("warm");
    let warm = cq.wait_any().expect("live");
    assert!(warm.output.is_ok());
    assert_eq!(warm.device_seconds, 0.0);
    assert_eq!(warm.latency(), 0.0);
    reactor.shutdown();
}

#[test]
fn deeper_closed_loops_trade_latency_for_throughput() {
    // The io_sweep claim in miniature: on one device, queue depth
    // doesn't change total service demand, so throughput is flat while
    // p99 latency grows with depth.
    let mean_latency = |depth: u64| {
        let (engine, _) = striped_engine(1, 0);
        let n = engine.total_reads();
        let reactor = Reactor::start(
            Arc::new(EngineBackend::new(engine)),
            IoConfig {
                workers: 1,
                queue_depth: depth as usize,
                devices: 1,
            },
        );
        let cq = reactor.completions();
        for c in 0..depth {
            let start = (c * 17) % n;
            reactor
                .submit(Request::Get(start..(start + 3).min(n)), c, 0.0)
                .expect("submit");
        }
        let mut sum = 0.0;
        let mut harvested = 0u64;
        let total = 48u64;
        let mut issued = depth;
        while harvested < total {
            let cqe = cq.wait_any().expect("live");
            assert!(cqe.output.is_ok());
            sum += cqe.latency();
            harvested += 1;
            if issued < total {
                let start = (issued * 17) % n;
                reactor
                    .submit(
                        Request::Get(start..(start + 3).min(n)),
                        cqe.user_data,
                        cqe.completed_vt,
                    )
                    .expect("submit");
                issued += 1;
            }
        }
        sum / total as f64
    };
    let shallow = mean_latency(1);
    let deep = mean_latency(8);
    assert!(
        deep > shallow * 3.0,
        "depth-8 mean latency {deep} should far exceed depth-1 {shallow}"
    );
}
