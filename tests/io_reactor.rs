//! End-to-end: the completion-queue reactor serving the multi-SSD
//! chunk store through the facade crate's typed client API.
//!
//! The bench harnesses (`io_sweep`, `fig15_multissd`) measure this
//! path; these tests pin its semantics — data correctness under
//! striping, virtual-time queueing behavior, and the serving layer's
//! shed/cancel contract — all through `sage::client`.

use sage::client::{ClosedLoopSpec, Dataset, DatasetBuilder, SubmitMode, Ticket};
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::genomics::ReadSet;
use sage::pipeline::SystemConfig;
use sage::store::{ReadView, StoreError, StoreOp};

fn striped_dataset(devices: usize, cache_chunks: usize) -> (Dataset, ReadSet) {
    let reads = simulate_dataset(&DatasetProfile::tiny_short(), 33).reads;
    let fleet = SystemConfig::pcie().with_ssds(devices).device_configs();
    let dataset = DatasetBuilder::new()
        .chunk_reads(16)
        .cache_chunks(cache_chunks)
        .ssd_fleet(fleet)
        .server_workers(3)
        .queue_depth(8)
        .encode(&reads)
        .expect("build dataset");
    (dataset, reads)
}

#[test]
fn sessions_serve_striped_gets_bit_identically() {
    let (dataset, reads) = striped_dataset(4, 0);
    let n = dataset.total_reads();
    let session = dataset.session();
    // 40 interleaved ranges; typed tickets are checkable in order
    // while the reactor completes them out of order underneath.
    let tickets: Vec<(u64, Ticket<ReadView>)> = (0..40u64)
        .map(|i| {
            let start = (i * 7) % n;
            let end = (start + 5).min(n);
            (start, session.get(start..end).expect("submit"))
        })
        .collect();
    for (start, ticket) in tickets {
        let end = (start + 5).min(n);
        let c = ticket.wait().expect("get");
        assert_eq!(c.value.len() as u64, end - start);
        for (k, r) in c.value.iter().enumerate() {
            assert_eq!(r.seq, reads.reads()[start as usize + k].seq);
            assert_eq!(r.qual, reads.reads()[start as usize + k].qual);
        }
        // Cold cache: every request charged at least one device.
        assert!(c.report.device_seconds > 0.0);
        assert!(!c.report.charges().is_empty());
        assert_eq!(c.report.cache_hits(), 0);
        assert!(c.report.completed_vt >= c.report.started_vt);
    }
    let snap = dataset.reactor_snapshot();
    assert_eq!(snap.completed, 40);
    assert_eq!(snap.device_busy.len(), 4);
    assert!(
        snap.device_busy.iter().filter(|b| **b > 0.0).count() >= 2,
        "striping engaged {:?}",
        snap.device_busy
    );
    dataset.shutdown();
}

#[test]
fn warm_cache_requests_cost_no_device_time() {
    let (dataset, _) = striped_dataset(2, 64);
    let session = dataset.session();
    let cold = session.get(0..16).expect("submit").wait().expect("cold");
    assert!(cold.report.device_seconds > 0.0);
    assert_eq!(cold.report.cache_misses(), 1);
    // Same chunk again: served from cache, zero virtual latency.
    let warm = session.get(0..16).expect("submit").wait().expect("warm");
    assert_eq!(warm.report.device_seconds, 0.0);
    assert_eq!(warm.report.latency(), 0.0);
    assert_eq!(warm.report.cache_hits(), 1);
    dataset.shutdown();
}

#[test]
fn deeper_closed_loops_trade_latency_for_throughput() {
    // The io_sweep claim in miniature: on one device, queue depth
    // doesn't change total service demand, so throughput is flat
    // while latency grows with depth.
    let mean_latency = |depth: usize| {
        let (dataset, _) = striped_dataset(1, 0);
        let n = dataset.total_reads();
        let report = dataset
            .drive_closed_loop(
                &ClosedLoopSpec {
                    clients: depth,
                    requests: 48,
                    workers: 1,
                },
                |c, i| {
                    let start = ((c + depth as u64 * i) * 17) % n;
                    StoreOp::Get(start..(start + 3).min(n))
                },
            )
            .expect("drive");
        report.latency.mean_ms
    };
    let shallow = mean_latency(1);
    let deep = mean_latency(8);
    assert!(
        deep > shallow * 3.0,
        "depth-8 mean latency {deep} should far exceed depth-1 {shallow}"
    );
}

#[test]
fn fail_mode_sheds_while_block_mode_backpressures() {
    let reads = simulate_dataset(&DatasetProfile::tiny_short(), 34).reads;
    let dataset = DatasetBuilder::new()
        .chunk_reads(16)
        .server_workers(1)
        .queue_depth(1)
        .encode(&reads)
        .expect("build");
    let blocking = dataset.session();
    let shedding = dataset.session().with_mode(SubmitMode::Fail);
    let slow = blocking.scan(|_| true).expect("submit scan");
    let mut rejected = 0u64;
    let mut accepted = Vec::new();
    for _ in 0..16 {
        match shedding.get(0..1) {
            Ok(t) => accepted.push(t),
            Err(StoreError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected {other}"),
        }
    }
    assert!(rejected > 0, "ring never filled");
    assert_eq!(dataset.stats().rejected, rejected);
    assert!(slow.wait().is_ok());
    for t in accepted {
        assert!(t.wait().is_ok());
    }
}

#[test]
fn abort_resolves_queued_tickets_with_cancelled() {
    let reads = simulate_dataset(&DatasetProfile::tiny_short(), 35).reads;
    let dataset = DatasetBuilder::new()
        .chunk_reads(16)
        .server_workers(1)
        .queue_depth(24)
        .encode(&reads)
        .expect("build");
    let session = dataset.session();
    let tickets: Vec<Ticket<ReadView>> = (0..16).map(|_| session.scan(|_| true).unwrap()).collect();
    dataset.abort();
    let mut cancelled = 0;
    let mut answered = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => answered += 1,
            Err(StoreError::Cancelled) => cancelled += 1,
            Err(other) => panic!("unexpected {other}"),
        }
    }
    assert!(cancelled > 0, "abort cancelled nothing");
    assert_eq!(answered + cancelled, 16);
    // Submissions after teardown fail typed.
    assert!(matches!(session.get(0..1), Err(StoreError::QueueClosed)));
}
