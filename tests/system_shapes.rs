//! Cross-crate system tests: the evaluation model must reproduce the
//! paper's qualitative results when fed *measured* compression ratios
//! from the real codecs.

use sage::core::SageCompressor;
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::hw::{HwCost, IntegrationMode, ThroughputModel};
use sage::pipeline::{run_experiment, AnalysisKind, DatasetModel, PrepKind, SystemConfig};
use sage::ssd::interface::ReadFormat;
use sage::ssd::{SsdCommand, SsdConfig, SsdModel};
use sage_baselines::SpringLike;

fn measured_model(profile: &DatasetProfile, seed: u64) -> DatasetModel {
    let ds = simulate_dataset(profile, seed);
    let (_, spring) = SpringLike::new().compress_detailed(&ds.reads);
    let (_, sage) = SageCompressor::new()
        .compress_detailed(&ds.reads)
        .expect("compress");
    DatasetModel {
        name: profile.name.clone(),
        total_bases: ds.reads.total_bases() as f64,
        n_reads: ds.reads.len() as f64,
        ratio_pigz: 4.0,
        ratio_spring: spring.dna_ratio(),
        ratio_sage: sage.dna_ratio(),
        isf_filter_fraction: profile.isf_filter_fraction,
    }
}

#[test]
fn measured_ratios_keep_sage_near_ideal() {
    let model = measured_model(&DatasetProfile::tiny_short(), 201);
    // Measured SAGe ratio must be close to the Spring-class ratio
    // (paper: within ~5%; we accept 25% on tiny sets).
    assert!(model.ratio_sage > 0.75 * model.ratio_spring);
    let sys = SystemConfig::pcie();
    let sage = run_experiment(PrepKind::SageHw, AnalysisKind::Gem, &model, &sys);
    let ideal = run_experiment(PrepKind::ZeroTimeDec, AnalysisKind::Gem, &model, &sys);
    assert!((sage.seconds / ideal.seconds - 1.0).abs() < 0.05);
    // And both are analysis-bound: preparation is no longer the
    // bottleneck (the paper's headline claim).
    assert_eq!(sage.bottleneck, "analysis");
}

#[test]
fn end_to_end_speedups_hold_with_measured_ratios() {
    let model = measured_model(&DatasetProfile::tiny_short(), 202);
    let sys = SystemConfig::pcie();
    let secs = |p: PrepKind| run_experiment(p, AnalysisKind::Gem, &model, &sys).seconds;
    let sage = secs(PrepKind::SageHw);
    assert!(secs(PrepKind::Pigz) / sage > 4.0);
    assert!(secs(PrepKind::NSpr) / sage > 2.0);
    assert!(secs(PrepKind::NSprAc) / sage > 1.5);
    assert!(secs(PrepKind::SageSw) / sage > 1.2);
}

#[test]
fn hw_decompression_outpaces_gem_consumption() {
    // The decompression hardware must never starve the mapper: its
    // NAND-bound output exceeds GEM's 6.9 Gbases/s for all measured
    // ratios above ~1.5.
    let model = measured_model(&DatasetProfile::tiny_long(), 203);
    let hw = ThroughputModel::default_8ch();
    assert!(hw.output_bandwidth(model.ratio_sage) > 6.92e9);
}

#[test]
fn in_ssd_integration_budget_is_tiny() {
    let hw = HwCost::new(SsdConfig::pcie().channels, IntegrationMode::InSsd);
    assert!(hw.fraction_of_ssd_controller_cores() < 0.01);
    assert!(hw.total_power_mw() < 1.0);
}

#[test]
fn storage_path_sustains_model_bandwidth() {
    // The SSD model's SAGe_Read bandwidth must match what the pipeline
    // model assumes for in-SSD preparation.
    let mut ssd = SsdModel::new(SsdConfig::pcie());
    let bytes = 1 << 28;
    let r = ssd.execute(SsdCommand::SageRead {
        bytes,
        format: ReadFormat::Packed2,
    });
    let measured_bw = bytes as f64 / r.seconds;
    let assumed = ssd.config().internal_read_bw(true);
    assert!((measured_bw / assumed - 1.0).abs() < 0.05);
    assert!(ssd.ftl().genomic_alignment_holds());
}

#[test]
fn energy_shape_matches_paper() {
    let model = measured_model(&DatasetProfile::tiny_short(), 204);
    let sys = SystemConfig::pcie();
    let energy = |p: PrepKind| run_experiment(p, AnalysisKind::Gem, &model, &sys).energy_joules;
    let sage = energy(PrepKind::SageHw);
    // Paper: 34.0x / 16.9x / 13.0x over pigz / (N)Spr / (N)SprAC.
    // Accept the same ordering and >5x magnitudes.
    let pigz = energy(PrepKind::Pigz) / sage;
    let spr = energy(PrepKind::NSpr) / sage;
    let ac = energy(PrepKind::NSprAc) / sage;
    assert!(pigz > spr && spr > ac && ac > 3.0, "{pigz} {spr} {ac}");
}

#[test]
fn faster_prep_never_hurts_any_dataset() {
    // Pipeline monotonicity across both tiny profiles and systems.
    for profile in [DatasetProfile::tiny_short(), DatasetProfile::tiny_long()] {
        let model = measured_model(&profile, 205);
        for sys in [SystemConfig::pcie(), SystemConfig::sata()] {
            let ordered = [
                PrepKind::Pigz,
                PrepKind::NSpr,
                PrepKind::NSprAc,
                PrepKind::SageSw,
            ];
            let mut last = f64::INFINITY;
            for p in ordered {
                let t = run_experiment(p, AnalysisKind::Gem, &model, &sys).seconds;
                assert!(
                    t <= last * 1.0001,
                    "{} slower than its slower predecessor on {}",
                    p.label(),
                    sys.ssd.name
                );
                last = t;
            }
        }
    }
}

#[test]
fn hardware_cycle_model_consumes_real_archive() {
    use sage::core::{SageCompressor, SageDecompressor};
    use sage::hw::{CycleModel, DecodeWorkload};

    let ds = simulate_dataset(&DatasetProfile::tiny_long(), 206);
    let archive = SageCompressor::new().compress(&ds.reads).expect("compress");
    let (reads, stats) = SageDecompressor::default()
        .decompress_with_stats(&archive)
        .expect("decompress");
    assert_eq!(stats.reads, reads.len() as u64);
    assert_eq!(stats.bases, reads.total_bases() as u64);
    assert!(stats.mismatch_records > 0);

    let w = DecodeWorkload::from_decode_stats(&archive, &stats);
    let model = CycleModel::default();
    let secs_8ch = model.decode_seconds(&w, 8);
    // Decoding an MB-scale archive must take the hardware well under a
    // millisecond — and the implied bandwidth must exceed GEM's rate.
    assert!(secs_8ch < 1e-3, "took {secs_8ch}s");
    let bandwidth = stats.bases as f64 / secs_8ch;
    assert!(bandwidth > 6.92e9, "logic bandwidth {bandwidth} too low");
}
