//! Cross-crate integration: simulator → codec → container → storage →
//! decompression → FASTQ, i.e. the whole data-preparation path a
//! `SAGe_Read` serves.

use sage::core::{OutputFormat, SageCompressor, SageDecompressor};
use sage::genomics::fastq::{fastq_to_read_set, read_set_to_fastq};
use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::genomics::{Read, ReadSet};
use sage_baselines::SpringLike;

fn sorted_content(rs: &ReadSet) -> Vec<(String, Option<Vec<u8>>)> {
    let mut v: Vec<_> = rs
        .iter()
        .map(|r: &Read| (r.seq.to_string(), r.qual.clone()))
        .collect();
    v.sort();
    v
}

#[test]
fn short_read_fastq_round_trip_through_sage() {
    let ds = simulate_dataset(&DatasetProfile::tiny_short(), 101);
    // FASTQ in...
    let fastq = read_set_to_fastq(&ds.reads);
    let reads = fastq_to_read_set(&fastq).expect("parse");
    // ...compressed, serialized, decompressed...
    let archive = SageCompressor::new().compress(&reads).expect("compress");
    let bytes = archive.to_bytes();
    let out = SageDecompressor::new(OutputFormat::Ascii)
        .decompress_bytes(&bytes)
        .expect("decompress");
    // ...FASTQ out: content identical up to reordering.
    assert_eq!(sorted_content(&reads), sorted_content(&out));
    let fastq_out = read_set_to_fastq(&out);
    let reparsed = fastq_to_read_set(&fastq_out).expect("reparse");
    assert_eq!(sorted_content(&out), sorted_content(&reparsed));
}

#[test]
fn long_read_round_trip_with_order() {
    let ds = simulate_dataset(&DatasetProfile::tiny_long(), 102);
    let archive = SageCompressor::new()
        .with_store_order(true)
        .compress(&ds.reads)
        .expect("compress");
    let out = SageDecompressor::default()
        .decompress(&archive)
        .expect("decompress");
    assert_eq!(out.len(), ds.reads.len());
    for (a, b) in ds.reads.iter().zip(out.iter()) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.qual, b.qual);
    }
}

#[test]
fn sage_and_spring_agree_on_content() {
    let ds = simulate_dataset(&DatasetProfile::tiny_short(), 103);
    let sage_out = SageDecompressor::default()
        .decompress(&SageCompressor::new().compress(&ds.reads).expect("compress"))
        .expect("decompress");
    let spring = SpringLike::new();
    let spring_out = spring
        .decompress(&spring.compress(&ds.reads))
        .expect("decompress");
    assert_eq!(sorted_content(&sage_out), sorted_content(&spring_out));
    assert_eq!(sorted_content(&sage_out), sorted_content(&ds.reads));
}

#[test]
fn quality_optionality_is_respected_end_to_end() {
    let mut ds = simulate_dataset(&DatasetProfile::tiny_long(), 104);
    // NanoSpring-style: drop quality at compression time.
    let archive = SageCompressor::new()
        .with_quality(false)
        .compress(&ds.reads)
        .expect("compress");
    let out = SageDecompressor::default()
        .decompress(&archive)
        .expect("decompress");
    assert!(out.iter().all(|r| r.qual.is_none()));
    // Bases still lossless.
    for r in ds.reads.reads_mut() {
        r.qual = None;
    }
    assert_eq!(sorted_content(&ds.reads), sorted_content(&out));
}

#[test]
fn prepared_formats_serve_accelerator_needs() {
    let ds = simulate_dataset(&DatasetProfile::tiny_short(), 105);
    let archive = SageCompressor::new().compress(&ds.reads).expect("compress");
    let ascii = SageDecompressor::new(OutputFormat::Ascii)
        .prepare(&archive)
        .expect("ascii");
    let p2 = SageDecompressor::new(OutputFormat::Packed2)
        .prepare(&archive)
        .expect("packed2");
    assert_eq!(ascii.len(), ds.reads.len());
    assert_eq!(p2.len(), ds.reads.len());
    // 2-bit packing quarters the interface traffic (the SAGeSSD+ISF
    // advantage in the pipeline model).
    if let (sage::core::PreparedBatch::Ascii(a), sage::core::PreparedBatch::Packed2(p)) =
        (ascii, p2)
    {
        let ascii_bytes: usize = a.iter().map(|r| r.len()).sum();
        let packed_bytes: usize = p.iter().map(|r| r.byte_len()).sum();
        assert!(packed_bytes * 3 < ascii_bytes);
    } else {
        panic!("unexpected variants");
    }
}

#[test]
fn reference_based_compression_round_trips() {
    let ds = simulate_dataset(&DatasetProfile::tiny_short(), 106);
    let archive = SageCompressor::new()
        .with_reference(ds.reference.clone())
        .compress(&ds.reads)
        .expect("compress");
    let out = SageDecompressor::default()
        .decompress(&archive)
        .expect("decompress");
    assert_eq!(sorted_content(&ds.reads), sorted_content(&out));
}
