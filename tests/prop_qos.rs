//! Multi-tenant QoS properties, cross-crate.
//!
//! Three guarantees the sage-qos subsystem rests on:
//!
//! 1. **FIFO compatibility** — a multi-tenant drive with one default
//!    tenant under the FIFO policy reproduces the single-tenant
//!    open-loop driver's [`QosReport`] exactly, across arrival
//!    processes × access patterns × fleet sizes. The queued scheduler
//!    is a pure refactor of the eager path until a policy reorders.
//! 2. **Conservation** — per-tenant busy seconds sum to the
//!    scheduler's per-device busy seconds *bitwise*: tenant
//!    attribution never invents or loses device time.
//! 3. **Strict-priority dominance** — on a contended device the
//!    high-priority tenant's latency under `StrictPriority` never
//!    regresses against FIFO, and undercuts the low-priority tenant.

use sage::genomics::sim::{simulate_dataset, DatasetProfile};
use sage::io::SchedPolicyKind;
use sage::ssd::SsdConfig;
use sage::store::{
    Dataset, DatasetBuilder, MultiTenantSpec, OpenLoopSpec, TenantId, TenantLoad, TenantSpec,
};
use sage::workload::{Arrivals, OpMix, Pattern};

/// An identically-prepared dataset per drive: same reads, same encode,
/// cold cache — the precondition for bit-identical replays.
fn fleet_dataset(devices: usize) -> Dataset {
    let reads = simulate_dataset(&DatasetProfile::tiny_short(), 77).reads;
    DatasetBuilder::new()
        .chunk_reads(16)
        .cache_chunks(0)
        .ssd_fleet((0..devices).map(|_| SsdConfig::pcie()).collect())
        .encode(&reads)
        .expect("build dataset")
}

#[test]
fn fifo_single_default_tenant_reproduces_open_loop_reports() {
    let arrivals = [
        Arrivals::Fixed { rate: 400.0 },
        Arrivals::Poisson { rate: 300.0 },
        Arrivals::Bursty {
            on_rate: 3000.0,
            mean_on: 0.01,
            mean_off: 0.01,
        },
    ];
    let patterns = [
        Pattern::Uniform { span: 16 },
        Pattern::Zipf {
            theta: 0.9,
            span: 16,
        },
        Pattern::Hotspot {
            hot_fraction: 0.1,
            hot_weight: 0.9,
            span: 16,
        },
    ];
    for devices in [1usize, 2] {
        for arr in arrivals {
            for pat in patterns {
                let mut legacy_spec = OpenLoopSpec::new(arr);
                legacy_spec.pattern = pat;
                legacy_spec.mix = OpMix {
                    get: 0.8,
                    scan: 0.1,
                    append: 0.1,
                };
                legacy_spec.requests = 96;
                legacy_spec.queue_depth = 8; // small: some cells shed
                legacy_spec.seed = 0x5eed;
                let legacy = fleet_dataset(devices)
                    .drive_open_loop(&legacy_spec)
                    .expect("legacy drive");

                let load = TenantLoad {
                    arrivals: arr,
                    pattern: pat,
                    mix: legacy_spec.mix,
                    requests: legacy_spec.requests,
                    seed: legacy_spec.seed,
                };
                let mut multi_spec =
                    MultiTenantSpec::new(SchedPolicyKind::Fifo).tenant(TenantSpec::default(), load);
                multi_spec.queue_depth = legacy_spec.queue_depth;
                let multi = fleet_dataset(devices)
                    .drive_tenants(&multi_spec)
                    .expect("multi drive");

                let cell = format!("{}x {} {}", devices, arr.label(), pat.label());
                let report = multi.tenant(TenantId::DEFAULT);
                assert_eq!(report, &legacy, "QosReport diverged in cell {cell}");
                // Bitwise on the latency stream, beyond PartialEq.
                for (a, b) in report.latencies.iter().zip(&legacy.latencies) {
                    assert_eq!(a.to_bits(), b.to_bits(), "latency bits in {cell}");
                }
                for (a, b) in report.device_busy.iter().zip(&legacy.device_busy) {
                    assert_eq!(a.to_bits(), b.to_bits(), "busy bits in {cell}");
                }
                assert_eq!(multi.makespan.to_bits(), legacy.makespan.to_bits());
            }
        }
    }
}

#[test]
fn weighted_fair_tenant_busy_seconds_conserve_exactly() {
    for seed in [0x1u64, 0xabcd, 0xdead_beef] {
        let dataset = fleet_dataset(3);
        let mut fg = TenantLoad::new(Arrivals::Poisson { rate: 500.0 });
        fg.requests = 64;
        fg.seed = seed;
        let mut scan_bg = TenantLoad::new(Arrivals::Poisson { rate: 150.0 });
        scan_bg.mix = OpMix {
            get: 0.2,
            scan: 0.8,
            append: 0.0,
        };
        scan_bg.requests = 32;
        scan_bg.seed = seed ^ 0xff;
        let mut ingest = TenantLoad::new(Arrivals::Fixed { rate: 200.0 });
        ingest.mix = OpMix {
            get: 0.0,
            scan: 0.0,
            append: 1.0,
        };
        ingest.requests = 32;
        ingest.seed = seed ^ 0xf0f0;
        let spec = MultiTenantSpec::new(SchedPolicyKind::WeightedFair)
            .tenant(TenantSpec::named("fg").with_weight(4.0), fg)
            .tenant(TenantSpec::named("scan").with_weight(1.0), scan_bg)
            .tenant(TenantSpec::named("ingest").with_weight(2.0), ingest);
        let report = dataset.drive_tenants(&spec).expect("drive");
        assert_eq!(report.tenant_busy.len(), 3);
        for (d, total) in report.device_busy.iter().enumerate() {
            let fold = report
                .tenant_busy
                .iter()
                .fold(0.0f64, |acc, row| acc + row[d]);
            assert_eq!(
                fold.to_bits(),
                total.to_bits(),
                "device {d} busy not conserved (seed {seed:#x})"
            );
        }
        // Each tenant's own device_busy view is its attribution row.
        for (t, qos) in report.tenants.iter().enumerate() {
            for (a, b) in qos.device_busy.iter().zip(&report.tenant_busy[t]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Queue-delay accounting exists for every tenant and is finite.
        assert_eq!(report.tenant_queue_delay.len(), 3);
        assert!(report.tenant_queue_delay.iter().all(|d| d.is_finite()));
    }
}

#[test]
fn strict_priority_dominates_fifo_for_the_foreground_tenant() {
    let drive = |policy| {
        let dataset = fleet_dataset(1);
        let mut fg = TenantLoad::new(Arrivals::Poisson { rate: 300.0 });
        fg.requests = 48;
        fg.seed = 0x11;
        let mut bg = TenantLoad::new(Arrivals::Bursty {
            on_rate: 30_000.0,
            mean_on: 0.02,
            mean_off: 0.005,
        });
        bg.mix = OpMix {
            get: 0.5,
            scan: 0.5,
            append: 0.0,
        };
        bg.requests = 192;
        bg.seed = 0x22;
        let mut spec = MultiTenantSpec::new(policy)
            .tenant(TenantSpec::named("fg").with_priority(200), fg)
            .tenant(TenantSpec::named("bg").with_priority(0), bg);
        spec.queue_depth = 256; // generous: reordering, not shedding
        dataset.drive_tenants(&spec).expect("drive")
    };
    let fifo = drive(SchedPolicyKind::Fifo);
    let sp = drive(SchedPolicyKind::StrictPriority);
    let fg = TenantId(0);
    let bg = TenantId(1);
    // Same offered streams either way.
    assert_eq!(sp.tenant(fg).offered, fifo.tenant(fg).offered);
    assert_eq!(sp.tenant(bg).offered, fifo.tenant(bg).offered);
    // Dominance on the contended device: the high-priority tenant's
    // latency under strict priority never regresses against FIFO...
    assert!(
        sp.tenant(fg).latency.mean_ms <= fifo.tenant(fg).latency.mean_ms,
        "fg mean {} > fifo {}",
        sp.tenant(fg).latency.mean_ms,
        fifo.tenant(fg).latency.mean_ms
    );
    assert!(
        sp.tenant(fg).latency.p99_ms <= fifo.tenant(fg).latency.p99_ms,
        "fg p99 {} > fifo {}",
        sp.tenant(fg).latency.p99_ms,
        fifo.tenant(fg).latency.p99_ms
    );
    // ...and undercuts the background tenant sharing the device.
    assert!(
        sp.tenant(fg).latency.mean_ms <= sp.tenant(bg).latency.mean_ms,
        "fg mean {} > bg mean {}",
        sp.tenant(fg).latency.mean_ms,
        sp.tenant(bg).latency.mean_ms
    );
}
