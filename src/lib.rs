//! # SAGe — facade crate
//!
//! This crate re-exports the entire SAGe reproduction workspace so that
//! examples, integration tests, and downstream users can depend on a single
//! crate.
//!
//! SAGe (HPCA 2026) is an algorithm-architecture co-design for
//! highly-compressed storage and high-performance access of large-scale
//! genomic sequence data. The workspace contains:
//!
//! - [`genomics`] — DNA/FASTQ data model and a sequencing simulator that
//!   synthesizes read sets with the statistical properties the paper's
//!   optimizations exploit.
//! - [`core`] — the SAGe codec itself: hardware-friendly arrays with tuned
//!   bit widths, the compressor, and the software Scan-Unit /
//!   Read-Construction-Unit decoder.
//! - [`baselines`] — from-scratch comparison compressors (a gzip/pigz-like
//!   general-purpose codec and a Spring/NanoSpring-like genomic codec).
//! - [`hw`] — the cycle-level model of SAGe's decompression hardware with
//!   the paper's Table 1 area/power constants.
//! - [`ssd`] — the SSD substrate: NAND timing, SAGe's data layout, FTL and
//!   GC, and the `SAGe_Read`/`SAGe_Write` interface commands.
//! - [`io`] — the completion-queue async I/O substrate: a bounded
//!   submission ring, a reactor multiplexing in-flight operations over a
//!   fixed worker set, per-device completion queues with virtual-time
//!   latency accounting, and multi-SSD extent sharding (`DeviceMap`).
//! - [`store`] — the sharded chunk-container store: parallel chunk codec,
//!   manifest-indexed random access, a concurrent query engine with
//!   pluggable chunk caches (LRU, segmented LRU, CLOCK), and single- or
//!   multi-SSD timing modes served through the reactor.
//! - [`client`] — **the typed serving API** (re-export of
//!   [`store::client`]): `DatasetBuilder` → `Dataset` → `Session`,
//!   typed tickets with per-operation `OpReport`s, and the shared
//!   closed-loop load driver. This is the one entry point onto the
//!   serving path.
//! - [`workload`] — open-loop workload generation and QoS measurement
//!   (re-export of [`store::client::workload`]): seedable arrival
//!   processes (fixed/Poisson/bursty) and access patterns
//!   (uniform/Zipf/sequential/hotspot) feeding
//!   `Dataset::drive_open_loop`, whose `QosReport` measures
//!   latency–throughput curves to saturation.
//! - [`obs`] — observability over the virtual timeline (re-export of
//!   [`store::obs`]): per-op span tracing with zero timeline
//!   perturbation, a unified metrics snapshot (`Dataset::metrics`),
//!   windowed utilization/hit-rate sampling, and Chrome trace-event
//!   (Perfetto-loadable) export.
//! - [`pipeline`] — the end-to-end pipelined simulator that reproduces the
//!   paper's evaluation figures (GEM and GenStore integration, energy),
//!   including the store-served preparation scenario routed through a
//!   [`client`] session.
//!
//! ## Quickstart
//!
//! ```
//! use sage::genomics::sim::{DatasetProfile, simulate_dataset};
//! use sage::client::DatasetBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize a small short-read dataset, encode it into the chunk
//! // store, and serve random access through a typed session.
//! let ds = simulate_dataset(&DatasetProfile::tiny_short(), 42);
//! let dataset = DatasetBuilder::new().chunk_reads(64).encode(&ds.reads)?;
//! let session = dataset.session();
//! let reads = session.get(10..20)?.join()?;   // Ticket<ReadSet>
//! assert_eq!(reads.len(), 10);
//! # Ok(())
//! # }
//! ```

pub use sage_baselines as baselines;
pub use sage_core as core;
pub use sage_genomics as genomics;
pub use sage_hw as hw;
pub use sage_io as io;
pub use sage_pipeline as pipeline;
pub use sage_ssd as ssd;
pub use sage_store as store;

// The serving front end, surfaced at the crate root: `sage::client`.
pub use sage_store::client;

// The open-loop workload/QoS subsystem: `sage::workload`.
pub use sage_store::client::workload;

// The observability layer (span tracing, unified metrics, Perfetto
// export): `sage::obs`.
pub use sage_store::obs;
